package mediumgrain_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"mediumgrain"
	"mediumgrain/internal/gen"
)

// TestEngineSearchDeterministicWinner: a Search request returns a
// bit-identical winner across repeated runs and across Workers {1, max}.
func TestEngineSearchDeterministicWinner(t *testing.T) {
	a := gen.Laplacian2D(30, 30)
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 2 {
		maxW = 4
	}
	req := mediumgrain.Request{
		Matrix: a, P: 4, Method: mediumgrain.MethodMediumGrain, Seed: 42,
		Search: mediumgrain.Search{Tries: 5},
	}
	var want *mediumgrain.Result
	for _, workers := range []int{1, maxW} {
		eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: workers})
		for run := 0; run < 2; run++ {
			res, err := eng.Partition(context.Background(), req)
			if err != nil {
				t.Fatalf("workers=%d run=%d: %v", workers, run, err)
			}
			if want == nil {
				want = res
				continue
			}
			if res.Volume != want.Volume {
				t.Fatalf("workers=%d run=%d: volume %d != %d", workers, run, res.Volume, want.Volume)
			}
			for k := range want.Parts {
				if res.Parts[k] != want.Parts[k] {
					t.Fatalf("workers=%d run=%d: parts diverge at nonzero %d", workers, run, k)
				}
			}
		}
	}
}

// TestEngineSearchNeverWorseThanSingle: try 0 of the race runs the
// request's own seed, so the winner can only match or beat the plain
// single-run partitioning.
func TestEngineSearchNeverWorseThanSingle(t *testing.T) {
	a := gen.Laplacian2D(26, 26)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 4})
	req := mediumgrain.Request{Matrix: a, P: 4, Method: mediumgrain.MethodMediumGrain, Seed: 11}
	single, err := eng.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	req.Search = mediumgrain.Search{Tries: 6}
	raced, err := eng.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if raced.Volume > single.Volume {
		t.Fatalf("search volume %d worse than single run %d", raced.Volume, single.Volume)
	}
}

// TestEngineSearchEvents: search progress events carry 1-based Try
// indices and a BestVolume stream ending at the winner's volume, and the
// final StageDone event names the winning try.
func TestEngineSearchEvents(t *testing.T) {
	a := gen.Laplacian2D(20, 20)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})
	const tries = 4
	var (
		mu        sync.Mutex
		done      *mediumgrain.Event
		sawTry    = map[int]bool{}
		badTry    bool
		afterDone bool
	)
	res, err := eng.Partition(context.Background(), mediumgrain.Request{
		Matrix: a, P: 4, Method: mediumgrain.MethodMediumGrain, Seed: 2,
		Search: mediumgrain.Search{Tries: tries},
		Progress: func(ev mediumgrain.Event) {
			mu.Lock()
			defer mu.Unlock()
			if done != nil {
				afterDone = true
			}
			if ev.Try < 1 || ev.Try > tries {
				badTry = true
			} else {
				sawTry[ev.Try] = true
			}
			if ev.Stage == mediumgrain.StageDone {
				e := ev
				done = &e
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if badTry {
		t.Fatal("event with Try outside [1, Tries]")
	}
	if len(sawTry) != tries {
		t.Fatalf("events covered %d tries, want %d", len(sawTry), tries)
	}
	if done == nil {
		t.Fatal("no StageDone event")
	}
	if afterDone {
		t.Fatal("events delivered after StageDone")
	}
	if done.BestVolume != res.Volume {
		t.Fatalf("done event BestVolume %d != result volume %d", done.BestVolume, res.Volume)
	}
	if done.CompletedNNZ != a.NNZ() || done.TotalNNZ != a.NNZ() {
		t.Fatalf("done event counts %d/%d, want %d/%d", done.CompletedNNZ, done.TotalNNZ, a.NNZ(), a.NNZ())
	}
}

// TestEngineSearchCancel: canceling mid-race surfaces context.Canceled
// and leaves the engine usable (root-level mirror of the core test).
func TestEngineSearchCancel(t *testing.T) {
	a := gen.Laplacian2D(48, 48)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})
	req := mediumgrain.Request{
		Matrix: a, P: 16, Method: mediumgrain.MethodMediumGrain, Seed: 1,
		Search: mediumgrain.Search{Tries: 4},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Partition(ctx, req); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := eng.Partition(context.Background(), req); err != nil {
		t.Fatalf("engine unusable after canceled search: %v", err)
	}
}

// TestEngineTypedErrors: the exported error types let callers branch on
// kind — ErrNoMatrix, *PartsLengthError, *BipartitionPError.
func TestEngineTypedErrors(t *testing.T) {
	eng := mediumgrain.New(mediumgrain.EngineConfig{})
	ctx := context.Background()
	a := gen.Laplacian2D(6, 6)

	for name, err := range map[string]error{
		"Partition":   firstErr(eng.Partition(ctx, mediumgrain.Request{})),
		"Bipartition": firstErr(eng.Bipartition(ctx, mediumgrain.Request{})),
	} {
		if !errors.Is(err, mediumgrain.ErrNoMatrix) {
			t.Fatalf("%s without matrix: want ErrNoMatrix, got %v", name, err)
		}
	}
	var ple *mediumgrain.PartsLengthError
	_, err := eng.Refine(ctx, mediumgrain.Request{Matrix: a, Parts: []int{0, 1}})
	if !errors.As(err, &ple) {
		t.Fatalf("Refine short parts: want *PartsLengthError, got %v", err)
	}
	if ple.Got != 2 || ple.Want != a.NNZ() {
		t.Fatalf("PartsLengthError fields %+v, want Got=2 Want=%d", ple, a.NNZ())
	}
	_, err = eng.Evaluate(ctx, mediumgrain.Request{Matrix: a, Parts: []int{0}})
	if !errors.As(err, &ple) {
		t.Fatalf("Evaluate short parts: want *PartsLengthError, got %v", err)
	}
	var bpe *mediumgrain.BipartitionPError
	_, err = eng.Bipartition(ctx, mediumgrain.Request{Matrix: a, P: 4})
	if !errors.As(err, &bpe) {
		t.Fatalf("Bipartition P=4: want *BipartitionPError, got %v", err)
	}
	if bpe.P != 4 {
		t.Fatalf("BipartitionPError.P = %d, want 4", bpe.P)
	}
	// P <= 2 stays accepted.
	for _, p := range []int{0, 1, 2} {
		if _, err := eng.Bipartition(ctx, mediumgrain.Request{Matrix: a, P: p, Seed: 1}); err != nil {
			t.Fatalf("Bipartition P=%d rejected: %v", p, err)
		}
	}
}

func firstErr(_ *mediumgrain.Result, err error) error { return err }
