package mediumgrain_test

import (
	"context"
	"fmt"

	"mediumgrain"
	"mediumgrain/internal/gen"
)

// ExampleBipartition partitions the paper's Fig. 1 matrix with the
// medium-grain method.
func ExampleBipartition() {
	a := mediumgrain.NewMatrix(3, 6)
	for _, nz := range [][2]int{
		{0, 0}, {0, 2}, {0, 3}, {0, 5},
		{1, 0}, {1, 1}, {1, 3}, {1, 4},
		{2, 1}, {2, 2}, {2, 4}, {2, 5},
	} {
		a.AppendPattern(nz[0], nz[1])
	}
	a.Canonicalize()

	opts := mediumgrain.DefaultOptions()
	opts.Refine = true
	res, err := mediumgrain.Bipartition(a, mediumgrain.MethodMediumGrain, opts, mediumgrain.NewRNG(42))
	if err != nil {
		panic(err)
	}
	fmt.Println("parts per nonzero:", len(res.Parts))
	fmt.Println("balanced:", mediumgrain.Imbalance(res.Parts, 2) <= opts.Eps)
	// Output:
	// parts per nonzero: 12
	// balanced: true
}

// ExampleIterativeRefine applies Algorithm 2 to a deliberately bad
// partitioning and shows that the volume never increases.
func ExampleIterativeRefine() {
	a := gen.Laplacian2D(12, 12)
	parts := make([]int, a.NNZ())
	for k := range parts {
		parts[k] = k % 2 // awful: nonzeros alternate parts
	}
	before := mediumgrain.Volume(a, parts, 2)
	refined := mediumgrain.IterativeRefine(a, parts, mediumgrain.DefaultOptions(), mediumgrain.NewRNG(1))
	after := mediumgrain.Volume(a, refined, 2)
	fmt.Println("volume reduced:", after < before)
	// Output:
	// volume reduced: true
}

// ExamplePartition distributes a mesh over 8 processors by recursive
// bisection.
func ExamplePartition() {
	a := gen.Laplacian2D(16, 16)
	res, err := mediumgrain.Partition(a, 8, mediumgrain.MethodMediumGrain,
		mediumgrain.DefaultOptions(), mediumgrain.NewRNG(3))
	if err != nil {
		panic(err)
	}
	used := map[int]bool{}
	for _, p := range res.Parts {
		used[p] = true
	}
	fmt.Println("parts used:", len(used))
	fmt.Println("within balance:", mediumgrain.Imbalance(res.Parts, 8) <= 0.03)
	// Output:
	// parts used: 8
	// within balance: true
}

// ExampleRunSpMV shows the full pipeline: partition, distribute, run the
// parallel multiplication, and check that measured traffic equals the
// model's communication volume.
func ExampleRunSpMV() {
	a := gen.WithRandomValues(mediumgrain.NewRNG(4), gen.Laplacian2D(10, 10))
	res, err := mediumgrain.Partition(a, 4, mediumgrain.MethodMediumGrain,
		mediumgrain.DefaultOptions(), mediumgrain.NewRNG(5))
	if err != nil {
		panic(err)
	}
	dist, err := mediumgrain.NewDistribution(a, res.Parts, 4)
	if err != nil {
		panic(err)
	}
	x := make([]float64, a.Cols)
	for j := range x {
		x[j] = 1
	}
	_, stats, err := mediumgrain.RunSpMV(a, dist, x)
	if err != nil {
		panic(err)
	}
	fmt.Println("traffic == volume:", stats.TotalWords() == res.Volume)
	// Output:
	// traffic == volume: true
}

// ExampleInitialSplit shows Algorithm 1's split: every nonzero goes to
// either the row group Ar or the column group Ac.
func ExampleInitialSplit() {
	a := gen.Tridiagonal(100)
	inRow := mediumgrain.InitialSplit(a, mediumgrain.SplitNNZ, mediumgrain.NewRNG(6))
	par := mediumgrain.InitialSplitParallel(a, mediumgrain.NewRNG(6), 4)
	same := true
	for k := range inRow {
		if inRow[k] != par[k] {
			same = false
		}
	}
	fmt.Println("split covers all nonzeros:", len(inRow) == a.NNZ())
	fmt.Println("parallel split identical:", same)
	// Output:
	// split covers all nonzeros: true
	// parallel split identical: true
}

// ExampleEngine_Partition is the recommended entry point: one reusable
// engine, seeded requests, context-based cancellation.
func ExampleEngine_Partition() {
	a := gen.Laplacian2D(16, 16)

	// Create the engine once (e.g. at process start) and share it; a
	// negative worker count selects runtime.GOMAXPROCS(0).
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: -1})

	res, err := eng.Partition(context.Background(), mediumgrain.Request{
		Matrix: a,
		P:      8,
		Method: mediumgrain.MethodMediumGrain,
		Seed:   42, // equal seeds give bit-identical results at every worker count
		Refine: true,
	})
	if err != nil {
		panic(err)
	}
	ev, err := eng.Evaluate(context.Background(), mediumgrain.Request{Matrix: a, P: 8, Parts: res.Parts})
	if err != nil {
		panic(err)
	}
	fmt.Println("parts assigned:", len(res.Parts) == a.NNZ())
	fmt.Println("volumes agree:", ev.Volume == res.Volume)
	fmt.Println("balanced:", ev.Imbalance <= 0.03)
	// Output:
	// parts assigned: true
	// volumes agree: true
	// balanced: true
}

// ExampleEngine_search trades spare cores for cut quality: the engine
// races several deterministic seed variants of one request and returns
// the best, pruning variants that can no longer win.
func ExampleEngine_search() {
	a := gen.Laplacian2D(24, 24)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: -1})

	req := mediumgrain.Request{
		Matrix: a,
		P:      8,
		Method: mediumgrain.MethodMediumGrain,
		Seed:   42,
	}
	single, err := eng.Partition(context.Background(), req)
	if err != nil {
		panic(err)
	}

	// Race 8 variants (seeds 42..49); a time.Duration Budget could bound
	// the race's wall time. The winner — lowest volume, then lowest try —
	// is bit-identical across runs and worker counts.
	req.Search = mediumgrain.Search{Tries: 8}
	best, err := eng.Partition(context.Background(), req)
	if err != nil {
		panic(err)
	}
	fmt.Println("winner no worse than single run:", best.Volume <= single.Volume)
	fmt.Println("balanced:", mediumgrain.Imbalance(best.Parts, 8) <= 0.03)
	// Output:
	// winner no worse than single run: true
	// balanced: true
}

// ExampleEngine_cancellation shows cooperative cancellation: canceling
// the context makes the engine stop partitioning and return ctx.Err()
// promptly, with all scratch memory checked back in.
func ExampleEngine_cancellation() {
	a := gen.Laplacian2D(64, 64)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a real caller cancels on timeout, shutdown, or user abort

	_, err := eng.Partition(ctx, mediumgrain.Request{
		Matrix: a,
		P:      16,
		Method: mediumgrain.MethodMediumGrain,
		Seed:   1,
	})
	fmt.Println("err:", err)

	// The engine stays fully usable after a canceled request.
	res, err := eng.Partition(context.Background(), mediumgrain.Request{
		Matrix: a,
		P:      16,
		Method: mediumgrain.MethodMediumGrain,
		Seed:   1,
	})
	fmt.Println("retry ok:", err == nil && len(res.Parts) == a.NNZ())
	// Output:
	// err: context canceled
	// retry ok: true
}
