package mediumgrain_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"mediumgrain"
	"mediumgrain/internal/gen"
)

func gridMatrix() *mediumgrain.Matrix {
	return gen.Laplacian2D(14, 14)
}

func TestPublicBipartitionAllMethods(t *testing.T) {
	a := gridMatrix()
	for _, m := range []mediumgrain.Method{
		mediumgrain.MethodRowNet, mediumgrain.MethodColNet,
		mediumgrain.MethodLocalBest, mediumgrain.MethodFineGrain,
		mediumgrain.MethodMediumGrain,
	} {
		res, err := mediumgrain.Bipartition(a, m, mediumgrain.DefaultOptions(), mediumgrain.NewRNG(1))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Volume != mediumgrain.Volume(a, res.Parts, 2) {
			t.Fatalf("%v: inconsistent volume", m)
		}
		if imb := mediumgrain.Imbalance(res.Parts, 2); imb > 0.03+1e-9 {
			t.Fatalf("%v: imbalance %g exceeds eps", m, imb)
		}
	}
}

func TestPublicPartitionAndBSP(t *testing.T) {
	a := gridMatrix()
	res, err := mediumgrain.Partition(a, 8, mediumgrain.MethodMediumGrain,
		mediumgrain.DefaultOptions(), mediumgrain.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if cost := mediumgrain.BSPCost(a, res.Parts, 8); cost <= 0 {
		t.Fatalf("BSP cost = %d", cost)
	}
}

func TestPublicIterativeRefine(t *testing.T) {
	a := gridMatrix()
	parts := make([]int, a.NNZ())
	for k := range parts {
		parts[k] = k % 2
	}
	before := mediumgrain.Volume(a, parts, 2)
	refined := mediumgrain.IterativeRefine(a, parts, mediumgrain.DefaultOptions(), mediumgrain.NewRNG(3))
	after := mediumgrain.Volume(a, refined, 2)
	if after > before {
		t.Fatalf("IR increased volume %d -> %d", before, after)
	}
}

func TestPublicConfigs(t *testing.T) {
	a := gridMatrix()
	for _, cfg := range []mediumgrain.PartitionerConfig{
		mediumgrain.MondriaanLikeConfig(), mediumgrain.AltConfig(),
	} {
		opts := mediumgrain.DefaultOptions()
		opts.Config = cfg
		if _, err := mediumgrain.Bipartition(a, mediumgrain.MethodMediumGrain, opts, mediumgrain.NewRNG(4)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicParseMethod(t *testing.T) {
	m, err := mediumgrain.ParseMethod("MG")
	if err != nil || m != mediumgrain.MethodMediumGrain {
		t.Fatalf("ParseMethod: %v %v", m, err)
	}
}

func TestPublicMatrixMarketFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	a := gridMatrix()
	if err := mediumgrain.WriteMatrixMarketFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, err := mediumgrain.ReadMatrixMarketFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != a.NNZ() || b.Rows != a.Rows {
		t.Fatal("file round trip changed matrix")
	}
	if _, err := mediumgrain.ReadMatrixMarketFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	if err := mediumgrain.WriteMatrixMarketFile(filepath.Join(dir, "no", "such", "dir", "m.mtx"), a); err == nil {
		t.Fatal("write into missing dir succeeded")
	}
	_ = os.Remove(path)
}

func TestPublicSpMVPipeline(t *testing.T) {
	a := gen.WithRandomValues(mediumgrain.NewRNG(5), gridMatrix())
	res, err := mediumgrain.Partition(a, 4, mediumgrain.MethodMediumGrain,
		mediumgrain.DefaultOptions(), mediumgrain.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	dist, err := mediumgrain.NewDistribution(a, res.Parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Cols)
	for j := range x {
		x[j] = float64(j) * 0.25
	}
	y, stats, err := mediumgrain.RunSpMV(a, dist, x)
	if err != nil {
		t.Fatal(err)
	}
	ref := a.ToCSR().MulVec(x)
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-9 {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
	if stats.TotalWords() != res.Volume {
		t.Fatalf("traffic %d != volume %d", stats.TotalWords(), res.Volume)
	}
}

func TestPublicClassConstants(t *testing.T) {
	a := mediumgrain.NewMatrix(2, 3)
	a.AppendPattern(0, 0)
	if a.Classify() != mediumgrain.ClassRectangular {
		t.Fatal("class constants broken")
	}
}

func TestDeterminismAcrossCalls(t *testing.T) {
	a := gridMatrix()
	r1, err := mediumgrain.Bipartition(a, mediumgrain.MethodMediumGrain, mediumgrain.DefaultOptions(), mediumgrain.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mediumgrain.Bipartition(a, mediumgrain.MethodMediumGrain, mediumgrain.DefaultOptions(), mediumgrain.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Volume != r2.Volume {
		t.Fatal("equal seeds gave different volumes")
	}
	for k := range r1.Parts {
		if r1.Parts[k] != r2.Parts[k] {
			t.Fatal("equal seeds gave different partitions")
		}
	}
}
