// Package mediumgrain is a Go implementation of the medium-grain method
// for fast 2D bipartitioning of sparse matrices (Pelt & Bisseling, IPDPS
// 2014), together with the classical baselines it is evaluated against
// (row-net, column-net, localbest, fine-grain), the iterative-refinement
// post-process of the paper, recursive bisection to general p, a
// from-scratch multilevel FM hypergraph partitioner, and a parallel SpMV
// substrate for validating communication volumes.
//
// Quick start — create one Engine for the life of the process and run
// every request through it:
//
//	a, _ := mediumgrain.ReadMatrixMarketFile("matrix.mtx")
//	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: -1}) // GOMAXPROCS pool
//	res, _ := eng.Partition(context.Background(), mediumgrain.Request{
//	    Matrix: a,
//	    P:      4,
//	    Method: mediumgrain.MethodMediumGrain,
//	    Seed:   42,
//	    Refine: true, // apply the paper's iterative refinement
//	})
//	fmt.Println("communication volume:", res.Volume)
//
// The Engine owns the worker pool and the per-worker scratch memory, is
// safe for concurrent use, and honors its context: canceling ctx stops
// the computation cooperatively (recursive bisection nodes, multilevel
// coarsening levels, FM passes, and metric scan chunks all observe it),
// returns ctx.Err() promptly, and leaks nothing. Requests are seeded —
// equal seeds give bit-identical results at every worker count — which
// replaces the *rand.Rand threading of the deprecated free functions.
//
// The free functions (Bipartition, Partition, IterativeRefine, ...) and
// their *Parallel forks predate the Engine; they survive as thin
// deprecated wrappers that build a throwaway engine per call and cannot
// be canceled. New code should not use them; each carries a migration
// note.
//
// # Parallel execution
//
// An Engine's worker count selects the execution engine:
//
//   - Workers == 0 (the zero value) is the sequential legacy path; it
//     preserves the exact per-seed results of earlier versions.
//   - Workers == N >= 1 runs on a pool of N goroutines; N < 0 selects
//     runtime.GOMAXPROCS(0).
//
// The pool is a counting semaphore threaded through the whole run.
// Recursive bisection fans the two disjoint halves of every split out
// over it (Partition on p parts exposes up to p-way task parallelism);
// inside each bisection, the multilevel hypergraph partitioner matches
// vertices with concurrent proposal rounds, runs its initial-partition
// tries as independent subproblems, and initializes FM gains in
// parallel; metric and k-way evaluation split their row/column scans.
//
// Determinism: with Workers >= 1 every random choice is drawn from a
// deterministic stream — child subproblems receive RNG streams seeded
// from the parent stream in a fixed order before the fork — so a given
// seed produces bit-identical partitionings for every worker count and
// any scheduling. Results may differ from the Workers == 0 legacy
// algorithms (a different, parallel-friendly matching order), but both
// paths are individually deterministic per seed. InitialSplitParallel
// remains bit-identical to InitialSplit for equal seeds.
//
// # FM refinement modes
//
// The hypergraph partitioner's FM refinement is a four-layer engine
// (see internal/hgpart's package comment for the full mechanics):
//
//   - Locked-net pruning (always on): per-net locked-pin counts skip
//     gain-update scans that are provably no-ops. Bit-identical in
//     every mode.
//   - Boundary-driven passes (the default): each pass seeds its gain
//     buckets from the pins of cut nets only, grown incrementally as
//     moves cut new nets, with an adaptive early exit — refinement
//     cost tracks the partition boundary instead of the hypergraph
//     size. PartitionerConfig.ExactFM restores the historical exact
//     all-vertex passes.
//   - Coarse-level try racing (PartitionerConfig.ParallelFM, parallel
//     engine only): small coarse levels race several FM sequences
//     across the worker pool — the serial continuation plus extra
//     tries on side substreams — and keep the best by (overload, cut,
//     try index), so an extra try displaces the serial result only
//     when strictly better.
//   - Speculative boundary batches (ParallelFM, parallel engine only):
//     large fine levels run optimistic prepass rounds — boundary move
//     gains computed concurrently in fixed-size batches against a
//     read-only snapshot, then committed serially in deterministic
//     order under a touched-net conflict set, with conflicted residue
//     falling back to the serial passes.
//
// Determinism contract: ExactFM and ParallelFM are mode switches.
// Per-seed results differ between modes — the bench suite gates every
// mode's quality delta at <= 5% volume per grid point — but within
// each mode results are bit-identical for a given seed at every worker
// count and pool size. ParallelFM requires the parallel engine and is
// ignored when Workers == 0; the sequential legacy path always
// reproduces its exact historical move sequence.
//
// # Race-to-best search
//
// The paper competes on communication volume, not wall time, so spare
// cores can be spent on quality directly: setting Request.Search.Tries
// to N makes Engine.Partition race N fully deterministic seed variants
// of the request (variant i uses Seed+i) over the engine's existing
// worker budget and return the best. Because the partial volume down
// the bisection tree is a monotone lower bound on the final volume,
// variants that can no longer beat the running best are canceled early
// through per-try contexts; a variant that could still tie is never
// pruned, so the winner — lowest volume, then lowest try index — is
// bit-identical across repeated runs and worker counts. Search.Budget
// bounds the race's wall time (returning the best completed variant),
// Search.VaryFM additionally races the two FM refinement modes, and
// progress events stream the race via Event.Try and Event.BestVolume.
// See the Search type and ExampleEngine_search.
//
// # Memory model
//
// The parallel engine keeps the per-node cost of recursive bisection at
// O(nnz(sub)): every bisection node extracts its subproblem as a
// *compact view* — nonzeros relabeled onto the occupied rows and
// columns, with back-maps to the parent's coordinates — instead of a
// full-dimension copy, and all working memory (the compaction maps, the
// CSR/CSC index shared by model build and metric evaluation, hypergraph
// build arrays, the multilevel engine's matching/contraction/FM
// buffers) comes from an explicit per-worker scratch that is reused
// level to level. Scratches are handed out by the recursion — the
// continuing branch keeps its scratch, the forked branch checks one out
// of a free list bounded by the worker count — so buffer reuse is
// deterministic, unlike sync.Pool.
//
// Determinism of compaction: the relabeling is order preserving, so the
// hypergraphs of the nonzero-vertex models (medium-grain, fine-grain)
// are invariant under it up to empty nets, and the split's global tie
// choice is made from the root matrix's shape. Compact-path
// partitionings with those methods are therefore bit-identical per seed
// to the legacy full-dimension extraction (the equivalence tests prove
// it). The 1D models (row-net, column-net, localbest) have matrix
// columns/rows as hypergraph vertices; compaction drops their empty
// vertices, so their per-seed results differ from earlier releases at
// Workers >= 1 — still deterministic and of equivalent quality, with
// the Workers == 0 path preserving the historical results exactly.
//
// # Benchmarking
//
// The cmd/mgbench runner executes a fixed experiment grid over the
// synthetic corpus and writes a machine-readable report:
//
//	go run ./cmd/mgbench -out BENCH_$(date +%F).json
//
// Each JSON entry records matrix shape, p, method, worker count, wall
// time in milliseconds, communication volume, achieved imbalance,
// allocations and bytes per partitioning call ("allocs_per_op",
// "bytes_per_op"), and the speedup of the parallel run over the
// Workers=1 run of the same grid point ("speedup_vs_seq"); the header
// records the Go version, GOMAXPROCS, and the seed, so reports are
// comparable across commits. Raising -scale past 1 adds the huge tier —
// a generated grid Laplacian with millions of nonzeros, the paper's
// size regime — timed once per point over methods {MG, FG} and
// p ∈ {16, 64}. `make bench-json` is the
// one-command entry point, `make bench-diff OLD=a.json NEW=b.json`
// compares two reports grid point by grid point (failing on >5% volume
// regression), and CI runs a smoke grid on every push, gates it against
// the committed baseline report, and uploads the JSON artifact.
//
// The exported types are aliases of the internal implementation packages
// so that the whole surface is reachable from this single import.
package mediumgrain

import (
	"context"
	"math/rand"
	"os"

	"mediumgrain/internal/cartesian"
	"mediumgrain/internal/core"
	"mediumgrain/internal/distio"
	"mediumgrain/internal/hgpart"
	"mediumgrain/internal/kway"
	"mediumgrain/internal/metrics"
	"mediumgrain/internal/sparse"
	"mediumgrain/internal/spmv"
)

// Matrix is a sparse matrix in coordinate format; see the methods on the
// type for construction, I/O, and pattern analysis.
type Matrix = sparse.Matrix

// Class labels a matrix rectangular / symmetric / square non-symmetric,
// the three groups of the paper's evaluation.
type Class = sparse.Class

// Matrix classes.
const (
	ClassRectangular  = sparse.ClassRectangular
	ClassSymmetric    = sparse.ClassSymmetric
	ClassSquareNonSym = sparse.ClassSquareNonSym
)

// Method selects a partitioning method.
type Method = core.Method

// Partitioning methods. MethodMediumGrain is the paper's contribution and
// the recommended default; MethodLocalBest is the strongest 1D baseline.
const (
	MethodRowNet      = core.MethodRowNet
	MethodColNet      = core.MethodColNet
	MethodLocalBest   = core.MethodLocalBest
	MethodFineGrain   = core.MethodFineGrain
	MethodMediumGrain = core.MethodMediumGrain
)

// ParseMethod converts an abbreviation ("MG", "LB", "FG", "RN", "CN") or
// full name ("mediumgrain", ...) into a Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// Options configures a partitioning run; see DefaultOptions.
type Options = core.Options

// Result is the outcome of a partitioning run: the per-nonzero part
// assignment and its communication volume.
type Result = core.Result

// SplitStrategy selects the medium-grain initial split (Algorithm 1 by
// default); alternatives exist for ablation studies.
type SplitStrategy = core.SplitStrategy

// Initial-split strategies.
const (
	SplitNNZ    = core.SplitNNZ
	SplitRandom = core.SplitRandom
	SplitAllAc  = core.SplitAllAc
	SplitAllAr  = core.SplitAllAr
)

// PartitionerConfig tunes the underlying multilevel hypergraph
// bipartitioner.
type PartitionerConfig = hgpart.Config

// MondriaanLikeConfig returns the engine preset mimicking Mondriaan's
// internal hypergraph partitioner (the paper's primary engine).
func MondriaanLikeConfig() PartitionerConfig { return hgpart.ConfigMondriaanLike() }

// AltConfig returns the alternative engine preset standing in for PaToH
// in the paper's Fig. 6 / Table II experiments.
func AltConfig() PartitionerConfig { return hgpart.ConfigAlt() }

// DefaultOptions returns the paper's experimental settings: ε = 0.03 and
// the Mondriaan-like engine, without iterative refinement.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewRNG returns a seeded random source; every randomized choice of the
// library is driven by the rng passed in, so equal seeds give equal
// partitionings.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// NewMatrix returns an empty rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return sparse.New(rows, cols) }

// ReadMatrixMarketFile loads a sparse matrix from a Matrix Market file.
func ReadMatrixMarketFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sparse.ReadMatrixMarket(f)
}

// WriteMatrixMarketFile stores a matrix in Matrix Market format.
func WriteMatrixMarketFile(path string, a *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sparse.WriteMatrixMarket(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Bipartition splits the nonzeros of a into two parts with the given
// method. The result satisfies the load-balance constraint
// max|A_i| ≤ (1+ε)·N/2 and reports the communication volume V.
//
// Deprecated: use Engine.Bipartition — New(EngineConfig{Workers:
// opts.Workers}).Bipartition(ctx, Request{Matrix: a, Method: method,
// Seed: s}) is bit-identical for rng = NewRNG(s) — which reuses pool
// and scratch memory across calls and honors its context.
func Bipartition(a *Matrix, method Method, opts Options, rng *rand.Rand) (*Result, error) {
	return core.Bipartition(a, method, opts, rng)
}

// Partition distributes the nonzeros of a over p parts by recursive
// bisection with the given method. With opts.Workers set, the disjoint
// subproblems of the bisection tree run concurrently on the worker-pool
// engine (see the package comment for the determinism guarantees).
//
// Deprecated: use Engine.Partition — New(EngineConfig{Workers:
// opts.Workers}).Partition(ctx, Request{Matrix: a, P: p, Method:
// method, Seed: s}) is bit-identical for rng = NewRNG(s) — which reuses
// pool and scratch memory across calls and honors its context.
func Partition(a *Matrix, p int, method Method, opts Options, rng *rand.Rand) (*Result, error) {
	return core.Partition(a, p, method, opts, rng)
}

// IterativeRefine applies the paper's Algorithm 2 to an existing
// bipartitioning of a (parts[k] ∈ {0,1} per nonzero) and returns an
// improved partitioning with never-larger communication volume. It can
// post-process the output of any method.
//
// Deprecated: use Engine.Refine with Request.Parts set and P = 2; it
// runs under a context and returns the refined volume alongside the
// parts.
func IterativeRefine(a *Matrix, parts []int, opts Options, rng *rand.Rand) []int {
	return core.IterativeRefine(a, parts, opts, rng)
}

// VCycleRefine is the hMetis-style multilevel alternative to
// IterativeRefine discussed in §III-C of the paper: restricted
// coarsening that respects the current bipartition followed by FM at all
// levels, alternating medium-grain encoding directions. More expensive
// than IterativeRefine, sometimes stronger; also monotone.
//
// Deprecated: construct an Engine and use its VCycleRefine-backed
// refinement via the internal core engine, or keep Engine.Refine for
// the paper's cheaper Algorithm 2; this wrapper builds a throwaway pool
// per call and cannot be canceled.
func VCycleRefine(a *Matrix, parts []int, opts Options, rng *rand.Rand) []int {
	return core.VCycleRefine(a, parts, opts, rng)
}

// FullIterative runs the paper's future-work "full iterative method"
// (§V): every iteration re-encodes the best bipartitioning found so far
// as a medium-grain split and performs a complete multilevel partitioning
// of the composite hypergraph, trading computation time for quality. The
// best result over `iterations` rounds is returned; one round equals a
// plain medium-grain run.
//
// Deprecated: this wrapper builds a throwaway engine per call and
// cannot be canceled; long-lived callers should hold an Engine and a
// future Engine method will expose the full iterative method directly.
func FullIterative(a *Matrix, iterations int, opts Options, rng *rand.Rand) (*Result, error) {
	return core.FullIterative(a, iterations, opts, rng)
}

// InitialSplit computes the medium-grain split A = Ar + Ac (Algorithm 1
// for SplitNNZ); inRow[k] is true when nonzero k belongs to the row
// group Ar.
func InitialSplit(a *Matrix, strategy SplitStrategy, rng *rand.Rand) []bool {
	return core.Split(a, strategy, rng)
}

// InitialSplitParallel is the multi-goroutine formulation of Algorithm 1
// sketched in the paper's §V; its output is identical to
// InitialSplit(a, SplitNNZ, rng) for equal rng seeds.
//
// Deprecated: the split runs in parallel automatically inside every
// parallel Engine's medium-grain partitioning; callers that only need
// the split itself should use InitialSplit, whose output is identical.
func InitialSplitParallel(a *Matrix, rng *rand.Rand, workers int) []bool {
	return core.SplitParallel(a, rng, workers)
}

// Volume returns the communication volume (eqn (3) of the paper) of a
// p-way nonzero partitioning.
func Volume(a *Matrix, parts []int, p int) int64 { return metrics.Volume(a, parts, p) }

// BSPCost returns the BSP communication cost (Table II metric): fan-out
// h-relation plus fan-in h-relation under a greedy vector distribution.
func BSPCost(a *Matrix, parts []int, p int) int64 {
	c, _ := metrics.BSPCost(a, parts, p)
	return c
}

// Imbalance returns the achieved load imbalance ε' of a partitioning:
// max_i |A_i| = (1+ε')·N/p.
func Imbalance(parts []int, p int) float64 { return metrics.Imbalance(parts, p) }

// KWayRefine post-processes a p-way partitioning with direct k-way
// greedy refinement under the λ−1 metric: individual nonzeros move
// between any pair of parts when that reduces volume and keeps balance.
// Useful after recursive bisection, whose splits are optimized in
// isolation. parts is modified in place; the final volume is returned.
//
// Deprecated: use Engine.Refine with Request.Parts and Request.P set;
// it runs under a context, never mutates the request's parts, and
// reuses the engine's pool.
func KWayRefine(a *Matrix, parts []int, p int, eps float64, rng *rand.Rand) int64 {
	return kway.Refine(context.Background(), a, parts, p, kway.Options{Eps: eps}, rng)
}

// KWayRefineParallel is KWayRefine with the count construction and
// volume evaluation spread over `workers` goroutines (0 = sequential,
// negative = GOMAXPROCS). The greedy move loop is sequential either
// way, so the refined parts and returned volume are identical to
// KWayRefine for equal seeds.
//
// Deprecated: use Engine.Refine on an Engine built with the desired
// worker count; this fork exists only because the legacy API had no
// handle to hang a pool on.
func KWayRefineParallel(a *Matrix, parts []int, p int, eps float64, workers int, rng *rand.Rand) int64 {
	return kway.Refine(context.Background(), a, parts, p, kway.Options{Eps: eps, Workers: workers}, rng)
}

// CartesianResult is a coarse-grain p×q Cartesian partitioning (rows
// into p stripes, columns into q under multi-constraint balance).
type CartesianResult = cartesian.Result

// CartesianPartition runs the coarse-grain method of Çatalyürek &
// Aykanat (the rigid 2D baseline the medium-grain method relaxes, paper
// §II): phase 1 partitions rows into p stripes, phase 2 partitions
// columns into q parts balancing every stripe simultaneously.
func CartesianPartition(a *Matrix, p, q int, opts Options, rng *rand.Rand) (*CartesianResult, error) {
	return cartesian.Partition(a, p, q, opts, rng)
}

// VectorDistribution assigns input-vector and output-vector components
// to processors (-1 for components touching no nonzero).
type VectorDistribution = metrics.VectorDistribution

// OptimizeVectorDistribution improves vector-component placement by
// local search on the BSP cost; the matrix partition (and hence the
// total volume) is unchanged. Pass maxMoves 0 for the default budget.
func OptimizeVectorDistribution(a *Matrix, parts []int, p int, dist *VectorDistribution, maxMoves int) (*VectorDistribution, int64) {
	return metrics.OptimizeVectorDistribution(a, parts, p, dist, maxMoves)
}

// DistributedBundle is the on-disk form of a distributed matrix: the
// pattern, per-nonzero owners, and vector-component owners.
type DistributedBundle = distio.Bundle

// NewDistributedBundle assembles and validates a bundle; a nil vec
// derives the greedy vector distribution.
func NewDistributedBundle(a *Matrix, parts []int, p int, vec *VectorDistribution) (*DistributedBundle, error) {
	return distio.NewBundle(a, parts, p, vec)
}

// WriteDistributed stores a bundle as <dir>/<name>.{mtx,parts,invec,outvec}.
func WriteDistributed(dir, name string, b *DistributedBundle) error {
	return distio.Write(dir, name, b)
}

// ReadDistributed loads and validates a bundle written by
// WriteDistributed.
func ReadDistributed(dir, name string) (*DistributedBundle, error) {
	return distio.Read(dir, name)
}

// Distribution is a full data distribution for parallel SpMV: nonzero
// owners plus input/output vector owners.
type Distribution = spmv.Distribution

// SpMVStats reports the communication observed during a parallel SpMV
// run.
type SpMVStats = spmv.Stats

// NewDistribution derives a parallel-SpMV data distribution from a
// nonzero partitioning, choosing vector owners greedily.
func NewDistribution(a *Matrix, parts []int, p int) (*Distribution, error) {
	return spmv.NewDistribution(a, parts, p)
}

// RunSpMV executes the four-phase parallel SpMV (fan-out, local multiply,
// fan-in, summation) on goroutine processors and returns y = A·x with
// communication statistics; the measured traffic equals Volume.
func RunSpMV(a *Matrix, dist *Distribution, x []float64) ([]float64, *SpMVStats, error) {
	return spmv.Run(a, dist, x)
}

// BSPMachine holds BSP machine parameters (flop rate, per-word gap g,
// per-superstep latency l) for runtime prediction.
type BSPMachine = spmv.Machine

// BSPPrediction is the modelled cost breakdown of one parallel SpMV.
type BSPPrediction = spmv.Prediction

// PredictSpMV evaluates the BSP cost model T = w + g·h + 4·l for a
// partitioning on the given machine, returning computation, traffic,
// total cost, and modelled speedup.
func PredictSpMV(a *Matrix, parts []int, p int, m BSPMachine) (*BSPPrediction, error) {
	return spmv.Predict(a, parts, p, m)
}

// SymmetricVolume returns the total SpMV communication when the input
// and output vectors of a square matrix must share one distribution
// (the constraint of the enhanced models reviewed in the paper's §II);
// it is at least Volume.
func SymmetricVolume(a *Matrix, parts []int, p int) (int64, error) {
	return metrics.SymmetricVolume(a, parts, p)
}
