// Command mgbench runs a fixed partitioning-benchmark grid and emits a
// machine-readable JSON report, so every commit can be compared on wall
// time, parallel speedup, communication volume, and balance with one
// command:
//
//	mgbench -out BENCH_2026-07-29.json        # full grid
//	mgbench -quick                            # CI smoke grid
//
// The grid crosses a fixed subset of the synthetic corpus (plus one
// larger generated mesh) with part counts, the medium-grain method, and
// worker counts {1, GOMAXPROCS}; each (matrix, p, workers) point is
// timed over -runs repetitions and the best wall time is reported.
// Speedups are relative to the Workers=1 entry of the same grid point.
// The JSON layout is internal/report.BenchReport (schema
// "mediumgrain-bench/1").
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"mediumgrain"
	"mediumgrain/internal/core"
	"mediumgrain/internal/corpus"
	"mediumgrain/internal/gen"
	"mediumgrain/internal/metrics"
	"mediumgrain/internal/report"
	"mediumgrain/internal/sparse"
)

type gridMatrix struct {
	name  string
	a     *sparse.Matrix
	class sparse.Class
	// ps restricts this matrix to specific part counts (nil = the grid's
	// defaults); the huge tier runs a small p sweep.
	ps []int
	// methods restricts this matrix to specific methods (nil = MG only);
	// the huge tier also runs the fine-grain model now that boundary FM
	// keeps its wall time tolerable.
	methods []string
	// runsOverride caps the repetitions (0 = the grid's -runs); the huge
	// tier is timed once.
	runsOverride int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgbench: ")

	var (
		outPath    = flag.String("out", "", "output JSON path (default BENCH_<date>.json)")
		runs       = flag.Int("runs", 3, "repetitions per grid point; best wall time is kept")
		seed       = flag.Int64("seed", 20140519, "random seed for generators and partitioning")
		scale      = flag.Int("scale", 1, "corpus scale factor")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel worker count benchmarked against workers=1")
		quick      = flag.Bool("quick", false, "CI smoke mode: small grid, 1 run")
		eps        = flag.Float64("eps", 0.03, "allowed load imbalance")
		exactFM    = flag.Bool("exact-fm", false, "benchmark the exact all-vertex FM passes instead of the boundary-driven default")
		parallelFM = flag.Bool("parallel-fm", false, "benchmark the parallel refinement layers (coarse-level try racing + speculative boundary batches)")
		tries      = flag.Int("tries", 1, "race-to-best search width per grid point (>1 races seed variants and reports a quality-vs-time frontier)")
		budget     = flag.Duration("budget", 0, "wall-time budget per search (0 = none); only meaningful with -tries > 1")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the whole grid here")
		memProf    = flag.String("memprofile", "", "write a heap profile (after the grid) here")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile of the whole grid here")
		blockProf  = flag.String("blockprofile", "", "write a blocking profile of the whole grid here")
	)
	flag.Parse()
	// Every later error path exits through fatalf, which flushes the CPU
	// profile first: log.Fatal skips deferred functions, and a truncated
	// pprof file would ship as corrupt "evidence" in the CI artifact.
	stopProfile := func() {}
	fatalf := func(format string, args ...any) {
		stopProfile()
		log.Fatalf(format, args...)
	}
	if *quick {
		*runs = 1
	}
	if *runs < 1 {
		*runs = 1
	}
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *outPath == "" {
		*outPath = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}

	fmt.Printf("mgbench: workers=%d (GOMAXPROCS=%d), runs=%d, seed=%d, quick=%v\n",
		*workers, runtime.GOMAXPROCS(0), *runs, *seed, *quick)

	grid := buildGrid(*seed, *scale, *quick)
	// Start profiling only now: buildGrid can log.Fatal (bypassing
	// fatalf), and grid generation is not what the profile is for.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Printf("closing %s: %v", *cpuProf, err)
			}
			stopProfile = func() {}
		}
		defer stopProfile()
	}
	// Mutex/block sampling must be armed before any pool work runs; the
	// profiles are snapshotted after the grid, so they cover exactly the
	// benchmarked workload (contention on the shared worker pool is what
	// the parallel refinement layers are tuned against).
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
	}
	writeLookupProfile := func(name, path string) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
			fatalf("writing %s profile: %v", name, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	pValues := []int{2, 16, 64}
	if *quick {
		pValues = []int{2, 64}
	}
	workerValues := []int{1, *workers}
	if *workers == 1 {
		workerValues = []int{1}
	}

	// The whole grid runs through the public Engine API — one reusable
	// engine per worker count, as a production caller would hold it —
	// so the report gates the Engine path against the baseline (results
	// are bit-identical to the legacy per-call API for equal seeds).
	pcfg := mediumgrain.MondriaanLikeConfig()
	pcfg.ExactFM = *exactFM
	pcfg.ParallelFM = *parallelFM
	engines := make(map[int]*mediumgrain.Engine, len(workerValues))
	for _, w := range workerValues {
		engines[w] = mediumgrain.New(mediumgrain.EngineConfig{Workers: w, Partitioner: pcfg})
	}

	if *tries < 1 {
		*tries = 1
	}
	rep := report.NewBenchReport(time.Now().UTC().Format(time.RFC3339), *seed, *runs)
	rep.Workers = *workers
	rep.ExactFM = *exactFM
	rep.ParallelFM = *parallelFM
	if *tries > 1 {
		rep.Tries = *tries
	}
	for _, gm := range grid {
		ps := pValues
		if gm.ps != nil {
			ps = gm.ps
		}
		runsHere := *runs
		if gm.runsOverride > 0 && gm.runsOverride < runsHere {
			runsHere = gm.runsOverride
		}
		methods := gm.methods
		if methods == nil {
			methods = []string{"MG"}
		}
		for _, method := range methods {
			for _, p := range ps {
				for _, w := range workerValues {
					entry, err := runPoint(engines[w], gm, p, method, w, *eps, *seed, runsHere, *tries, *budget)
					if err != nil {
						fatalf("%s %s p=%d workers=%d: %v", gm.name, method, p, w, err)
					}
					rep.Entries = append(rep.Entries, entry)
					fmt.Printf("%-14s %-2s p=%-3d workers=%-2d  %8.1f ms  volume=%-7d imbalance=%.4f  allocs/op=%-8d MB/op=%.1f%s\n",
						gm.name, method, p, w, entry.WallMS, entry.Volume, entry.Imbalance,
						entry.AllocsPerOp, float64(entry.BytesPerOp)/(1024*1024), frontierColumn(entry.Frontier))
				}
			}
		}
	}
	rep.FillSpeedups()

	if err := rep.WriteJSONFile(*outPath); err != nil {
		fatalf("%v", err)
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	writeLookupProfile("mutex", *mutexProf)
	writeLookupProfile("block", *blockProf)
	fmt.Printf("\nreport written to %s\n", *outPath)
	printSpeedupSummary(rep, *workers)
	_ = os.Stdout.Sync()
}

// buildGrid selects the benchmark matrices: a fixed corpus subset
// spanning all three classes plus one larger generated mesh that gives
// the p=64 recursion enough work to measure. Raising -scale above 1
// additionally enables the huge tier: a grid Laplacian with at least a
// million nonzeros (n = 330·scale per side, so -scale 2 ≈ 2.2M nnz),
// timed once per point over methods {MG, FG} × p {16, 64} — the wider
// sweep the boundary-driven FM refinement made affordable. -scale 3
// widens the side to n = 340·scale ≈ 1020, crossing the paper's
// 5M-nonzero corpus ceiling (5n² − 4n ≈ 5.2M); the entry reuses the
// same BENCH_* schema and grid-point naming, so `make bench-diff` and
// the CI benchdiff gate compare it across commits like any other point.
func buildGrid(seed int64, scale int, quick bool) []gridMatrix {
	instances := corpus.Build(corpus.Options{Scale: scale, Seed: seed})
	names := []string{"lap2d-24", "powerlaw-3", "er-sq-1", "bip-tall"}
	if quick {
		names = []string{"lap2d-24", "bip-tall"}
	}
	var grid []gridMatrix
	for _, name := range names {
		in, err := corpus.Find(instances, name)
		if err != nil {
			log.Fatal(err)
		}
		grid = append(grid, gridMatrix{name: in.Name, a: in.A, class: in.Class})
	}
	if !quick {
		big := gen.Laplacian2D(120*scale, 120*scale)
		grid = append(grid, gridMatrix{name: "lap2d-120", a: big, class: big.Classify()})
	}
	if !quick && scale >= 2 {
		n := 330 * scale
		if scale >= 3 {
			// The paper's corpus tops out at 5M nonzeros; a 5-point
			// Laplacian has 5n²−4n of them, so n = 1020 clears it.
			n = 340 * scale
		}
		huge := gen.Laplacian2D(n, n)
		grid = append(grid, gridMatrix{
			name:         fmt.Sprintf("lap2d-huge-%d", n),
			a:            huge,
			class:        huge.Classify(),
			ps:           []int{16, 64},
			methods:      []string{"MG", "FG"},
			runsOverride: 1,
		})
	}
	return grid
}

// runPoint times Engine.Partition for one grid point, keeping the best
// wall time over runs; quality metrics come from the last run (all runs
// use the same seed and are identical for Workers >= 1). With tries > 1
// the point races a best-of-N search and the entry carries the
// quality-vs-time frontier of the last run.
func runPoint(eng *mediumgrain.Engine, gm gridMatrix, p int, method string, workers int, eps float64, seed int64, runs, tries int, budget time.Duration) (report.BenchEntry, error) {
	m, err := core.ParseMethod(method)
	if err != nil {
		return report.BenchEntry{}, err
	}
	epsReq := eps
	if epsReq == 0 {
		epsReq = -1 // Request semantics: 0 = default, negative = exact
	}
	req := mediumgrain.Request{Matrix: gm.a, P: p, Method: m, Seed: seed, Eps: epsReq}
	var frontier []report.FrontierPoint
	if tries > 1 {
		req.Search = mediumgrain.Search{Tries: tries, Budget: budget}
		var mu sync.Mutex
		req.Progress = func(ev mediumgrain.Event) {
			if ev.Stage != mediumgrain.StagePartition || ev.BestVolume < 0 {
				return
			}
			mu.Lock()
			if n := len(frontier); n == 0 || ev.BestVolume < frontier[n-1].Volume {
				frontier = append(frontier, report.FrontierPoint{
					WallMS: float64(ev.Elapsed.Microseconds()) / 1000,
					Volume: ev.BestVolume,
					Try:    ev.Try,
				})
			}
			mu.Unlock()
		}
	}

	var best time.Duration
	var res *core.Result
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	for r := 0; r < runs; r++ {
		frontier = nil
		start := time.Now()
		res, err = eng.Partition(context.Background(), req)
		elapsed := time.Since(start)
		if err != nil {
			return report.BenchEntry{}, err
		}
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	runtime.ReadMemStats(&msAfter)
	return report.BenchEntry{
		Matrix:      gm.name,
		Class:       gm.class.String(),
		Rows:        gm.a.Rows,
		Cols:        gm.a.Cols,
		NNZ:         gm.a.NNZ(),
		P:           p,
		Method:      method,
		Workers:     workers,
		WallMS:      float64(best.Microseconds()) / 1000,
		Volume:      res.Volume,
		Imbalance:   metrics.Imbalance(res.Parts, p),
		AllocsPerOp: (msAfter.Mallocs - msBefore.Mallocs) / uint64(runs),
		BytesPerOp:  (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(runs),
		Frontier:    frontier,
	}, nil
}

// frontierColumn renders a search entry's quality-vs-time frontier as a
// compact "frontier: vol@ms > vol@ms ..." console column; empty for
// single-try entries.
func frontierColumn(frontier []report.FrontierPoint) string {
	if len(frontier) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  frontier: ")
	for i, fp := range frontier {
		if i > 0 {
			b.WriteString(" > ")
		}
		fmt.Fprintf(&b, "%d@%.0fms", fp.Volume, fp.WallMS)
	}
	return b.String()
}

func printSpeedupSummary(rep *report.BenchReport, workers int) {
	if workers == 1 {
		fmt.Println("single worker benchmarked; no speedup column")
		return
	}
	var sum float64
	var n int
	for _, e := range rep.Entries {
		if e.Workers == workers && e.SpeedupVsSeq > 0 {
			sum += e.SpeedupVsSeq
			n++
		}
	}
	if n > 0 {
		fmt.Printf("mean speedup (workers=%d vs 1) over %d grid points: %.2fx\n", workers, n, sum/float64(n))
	}
}
