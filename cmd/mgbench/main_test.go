package main

import "testing"

func TestBuildGridHugeTier(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a multi-million-nonzero mesh; skipped with -short")
	}
	grid := buildGrid(1, 2, false)
	var huge *gridMatrix
	for i := range grid {
		if grid[i].name == "lap2d-huge-660" {
			huge = &grid[i]
		}
	}
	if huge == nil {
		t.Fatal("-scale 2 grid is missing the huge tier")
	}
	if huge.a.NNZ() < 1_000_000 {
		t.Fatalf("huge tier has only %d nonzeros, want >= 1M", huge.a.NNZ())
	}
	if len(huge.ps) != 1 || huge.ps[0] != 64 || huge.runsOverride != 1 {
		t.Fatalf("huge tier must run once at p=64 only, got ps=%v runs=%d", huge.ps, huge.runsOverride)
	}
}

func TestBuildGridScale3ReachesPaperRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a ~5M-nonzero mesh; skipped with -short")
	}
	grid := buildGrid(1, 3, false)
	var huge *gridMatrix
	for i := range grid {
		if grid[i].name == "lap2d-huge-1020" {
			huge = &grid[i]
		}
	}
	if huge == nil {
		t.Fatal("-scale 3 grid is missing the widened huge tier")
	}
	if huge.a.NNZ() < 5_000_000 {
		t.Fatalf("scale-3 tier has only %d nonzeros, want >= 5M (the paper's corpus ceiling)", huge.a.NNZ())
	}
	if len(huge.ps) != 1 || huge.ps[0] != 64 || huge.runsOverride != 1 {
		t.Fatalf("huge tier must run once at p=64 only, got ps=%v runs=%d", huge.ps, huge.runsOverride)
	}
}

func TestBuildGridDefaultHasNoHugeTier(t *testing.T) {
	for _, gm := range buildGrid(1, 1, false) {
		if gm.ps != nil || gm.runsOverride != 0 {
			t.Fatalf("default grid contains a restricted entry: %+v", gm.name)
		}
	}
}
