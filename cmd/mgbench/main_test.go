package main

import "testing"

func TestBuildGridHugeTier(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a multi-million-nonzero mesh; skipped with -short")
	}
	grid := buildGrid(1, 2, false)
	var huge *gridMatrix
	for i := range grid {
		if grid[i].name == "lap2d-huge-660" {
			huge = &grid[i]
		}
	}
	if huge == nil {
		t.Fatal("-scale 2 grid is missing the huge tier")
	}
	if huge.a.NNZ() < 1_000_000 {
		t.Fatalf("huge tier has only %d nonzeros, want >= 1M", huge.a.NNZ())
	}
	checkHugeTierSweep(t, huge)
}

// checkHugeTierSweep asserts the widened huge tier: timed once per
// point, p sweep {16, 64}, methods {MG, FG}.
func checkHugeTierSweep(t *testing.T, huge *gridMatrix) {
	t.Helper()
	if len(huge.ps) != 2 || huge.ps[0] != 16 || huge.ps[1] != 64 || huge.runsOverride != 1 {
		t.Fatalf("huge tier must run once over p={16,64}, got ps=%v runs=%d", huge.ps, huge.runsOverride)
	}
	if len(huge.methods) != 2 || huge.methods[0] != "MG" || huge.methods[1] != "FG" {
		t.Fatalf("huge tier must sweep methods {MG, FG}, got %v", huge.methods)
	}
}

func TestBuildGridScale3ReachesPaperRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a ~5M-nonzero mesh; skipped with -short")
	}
	grid := buildGrid(1, 3, false)
	var huge *gridMatrix
	for i := range grid {
		if grid[i].name == "lap2d-huge-1020" {
			huge = &grid[i]
		}
	}
	if huge == nil {
		t.Fatal("-scale 3 grid is missing the widened huge tier")
	}
	if huge.a.NNZ() < 5_000_000 {
		t.Fatalf("scale-3 tier has only %d nonzeros, want >= 5M (the paper's corpus ceiling)", huge.a.NNZ())
	}
	checkHugeTierSweep(t, huge)
}

func TestBuildGridDefaultHasNoHugeTier(t *testing.T) {
	for _, gm := range buildGrid(1, 1, false) {
		if gm.ps != nil || gm.methods != nil || gm.runsOverride != 0 {
			t.Fatalf("default grid contains a restricted entry: %+v", gm.name)
		}
	}
}
