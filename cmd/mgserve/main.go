// Command mgserve is the partitioning-as-a-service daemon: it accepts
// partition jobs over HTTP/JSON (named corpus instances or Matrix
// Market uploads), runs them on a bounded scheduler whose jobs share
// one machine-wide worker pool, serves repeat submissions from a
// content-addressed result cache, and persists completed results as
// distio bundles so a restart rehydrates the cache.
//
//	mgserve -addr :8080 -data /var/lib/mgserve
//
// SIGINT/SIGTERM begin a graceful drain: new submissions are refused
// with 503, every accepted job runs to completion (and persists), then
// the HTTP listener shuts down. See internal/service for the API
// contract.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mediumgrain/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mgserve: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "shared engine pool size (0 = GOMAXPROCS)")
		runners     = flag.Int("runners", 2, "concurrently executing jobs")
		queue       = flag.Int("queue", 64, "admission queue depth")
		cacheSize   = flag.Int("cache", 256, "result cache entries")
		dataDir     = flag.String("data", "", "persist results here and rehydrate on start (empty = off)")
		corpusScale = flag.Int("corpus-scale", 0, "corpus scale (0 = default)")
		corpusSeed  = flag.Int64("corpus-seed", 0, "corpus seed (0 = default)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "default per-job timeout")
		salvage     = flag.Bool("salvage", false, "salvage-on-cancel: let timed-out/canceled computations finish in the background and cache their results instead of canceling their context")
	)
	flag.Parse()

	srv, warns := service.New(service.Config{
		Workers:         *workers,
		Runners:         *runners,
		QueueDepth:      *queue,
		CacheEntries:    *cacheSize,
		DataDir:         *dataDir,
		DefaultTimeout:  *timeout,
		CorpusScale:     *corpusScale,
		CorpusSeed:      *corpusSeed,
		SalvageOnCancel: *salvage,
	})
	for _, w := range warns {
		log.Printf("rehydration: %v", w)
	}
	st := srv.Stats()
	log.Printf("listening on %s (workers=%d runners=%d queue=%d cache=%d/%d rehydrated)",
		*addr, st.Workers, st.Runners, st.QueueCap, st.Cache.Entries, st.Cache.Capacity)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: draining (refusing new jobs, finishing accepted work)", sig)
	}

	srv.Drain()
	st = srv.Stats()
	log.Printf("drained: %d completed, %d failed, cache %d entries (%d hits / %d misses)",
		st.Completed, st.Failed, st.Cache.Entries, st.Cache.Hits, st.Cache.Misses)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}
