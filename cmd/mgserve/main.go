// Command mgserve is the partitioning-as-a-service daemon: it accepts
// partition jobs over HTTP/JSON (named corpus instances or Matrix
// Market uploads), runs them on a bounded scheduler whose jobs share
// one machine-wide worker pool, serves repeat submissions from a
// content-addressed result cache, and persists completed results as
// distio bundles so a restart rehydrates the cache.
//
//	mgserve -addr :8080 -data /var/lib/mgserve
//
// Beyond single-node operation, mgserve runs in two cluster roles (see
// internal/cluster):
//
//	mgserve -router -shards a:8081,b:8082        # stateless router
//	mgserve -addr a:8081 -node a:8081 \
//	        -peers a:8081,b:8082 -data /var/a    # one shard
//
// A router owns no jobs and no cache: it hashes each submission to its
// content-addressed cache key, proxies it to the shard owning that key
// on the consistent-hash ring, and fails over along the key's replica
// set when a shard is unreachable or draining. Shards fetch missing
// cache entries from ring peers before computing and replicate hot
// entries to the key's other replicas. Routers and shards must agree on
// the shard list (-shards here, -peers there) and corpus options.
//
// SIGINT/SIGTERM begin a graceful drain: readiness drops (so routers
// stop routing here), new submissions are refused with 503, every
// accepted job runs to completion (and persists), then — after -linger,
// which gives clients time for trailing status polls — the HTTP
// listener shuts down. See internal/service for the API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mediumgrain/internal/cluster"
	"mediumgrain/internal/corpus"
	"mediumgrain/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mgserve: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "shared engine pool size (0 = GOMAXPROCS)")
		runners     = flag.Int("runners", 2, "concurrently executing jobs")
		queue       = flag.Int("queue", 64, "admission queue depth")
		cacheSize   = flag.Int("cache", 256, "result cache entries")
		dataDir     = flag.String("data", "", "persist results here and rehydrate on start (empty = off)")
		corpusScale = flag.Int("corpus-scale", 0, "corpus scale (0 = default)")
		corpusSeed  = flag.Int64("corpus-seed", 0, "corpus seed (0 = default)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "default per-job timeout")
		salvage     = flag.Bool("salvage", false, "salvage-on-cancel: let timed-out/canceled computations finish in the background and cache their results instead of canceling their context")

		// Cluster roles.
		router    = flag.Bool("router", false, "run as a stateless cluster router over -shards instead of a compute shard")
		shards    = flag.String("shards", "", "router mode: comma-separated shard addresses (host:port)")
		node      = flag.String("node", "", "shard mode: this shard's own address as listed in -peers")
		peers     = flag.String("peers", "", "shard mode: comma-separated addresses of every shard, this one included")
		replicas  = flag.Int("replicas", 2, "replica-set size K: the owner plus K-1 ring successors hold each hot key")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the hash ring")
		replAfter = flag.Int64("replicate-after", cluster.DefaultReplicateAfter, "shard mode: cache hits after which an entry replicates to its other ring replicas")
		secret    = flag.String("cluster-secret", os.Getenv("MGSERVE_CLUSTER_SECRET"), "shard mode: shared secret authenticating the peer /cache endpoints; must match on every shard (default $MGSERVE_CLUSTER_SECRET; empty leaves them open — trusted networks only)")
		linger    = flag.Duration("linger", 0, "after draining, keep serving reads this long before closing the listener (lets clients finish trailing status polls)")
	)
	flag.Parse()

	if *router {
		runRouter(*addr, *shards, *vnodes, *replicas, *corpusScale, *corpusSeed)
		return
	}

	var clu *cluster.ShardConfig
	if *peers != "" || *node != "" {
		ring, err := cluster.NewRing(splitList(*peers), *vnodes, *replicas)
		if err != nil {
			log.Fatalf("peer ring: %v", err)
		}
		if !ring.Contains(*node) {
			log.Fatalf("-node %q is not in -peers %v", *node, ring.Nodes())
		}
		clu = &cluster.ShardConfig{Self: *node, Ring: ring, ReplicateAfter: *replAfter, Secret: *secret}
		if *secret == "" {
			log.Printf("warning: no -cluster-secret; peer /cache endpoints accept pushes from anyone who can reach them")
		}
		log.Printf("shard %s of %d-node ring %v (replicas=%d, vnodes=%d)",
			cluster.NormalizeNode(*node), len(ring.Nodes()), ring.Nodes(), ring.ReplicaCount(), ring.VNodes())
	}

	srv, warns := service.New(service.Config{
		Workers:         *workers,
		Runners:         *runners,
		QueueDepth:      *queue,
		CacheEntries:    *cacheSize,
		DataDir:         *dataDir,
		DefaultTimeout:  *timeout,
		CorpusScale:     *corpusScale,
		CorpusSeed:      *corpusSeed,
		SalvageOnCancel: *salvage,
		Cluster:         clu,
	})
	for _, w := range warns {
		log.Printf("startup: %v", w)
	}
	st := srv.Stats()
	log.Printf("listening on %s (workers=%d runners=%d queue=%d cache=%d/%d rehydrated)",
		*addr, st.Workers, st.Runners, st.QueueCap, st.Cache.Entries, st.Cache.Capacity)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: draining (refusing new jobs, finishing accepted work)", sig)
	}

	srv.Drain()
	st = srv.Stats()
	log.Printf("drained: %d completed, %d failed, cache %d entries (%d hits / %d misses)",
		st.Completed, st.Failed, st.Cache.Entries, st.Cache.Hits, st.Cache.Misses)

	// The listener stays up through the linger window so clients whose
	// jobs just finished can still poll status and fetch results; only
	// new submissions are refused (503 → router failover).
	if *linger > 0 {
		log.Printf("lingering %s for trailing reads", *linger)
		time.Sleep(*linger)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}

// runRouter serves the stateless router role: no jobs, no cache, no
// drain protocol — SIGTERM just closes the listener (in-flight proxied
// requests finish via Shutdown's grace period).
func runRouter(addr, shards string, vnodes, replicas, corpusScale int, corpusSeed int64) {
	nodes := splitList(shards)
	if len(nodes) == 0 {
		log.Fatalf("-router needs -shards host:port,host:port,...")
	}
	// The router keys named-corpus submissions without materializing
	// matrices per request: it builds the same corpus the shards run
	// with, once, and keeps only the name → matrix-hash table.
	opts := corpus.DefaultOptions()
	if corpusScale > 0 {
		opts.Scale = corpusScale
	}
	if corpusSeed != 0 {
		opts.Seed = corpusSeed
	}
	hashes := make(map[string]string)
	for _, in := range corpus.Build(opts) {
		hashes[in.Name] = cluster.MatrixHash(in.A)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Shards:       nodes,
		VNodes:       vnodes,
		Replicas:     replicas,
		CorpusHashes: hashes,
	})
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	ring := rt.Ring()
	log.Printf("router on %s over %d shards %v (replicas=%d, vnodes=%d)",
		addr, len(ring.Nodes()), ring.Nodes(), ring.ReplicaCount(), ring.VNodes())

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: shutting down router", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
