// Command mgserve is the partitioning-as-a-service daemon: it accepts
// partition jobs over HTTP/JSON (named corpus instances or Matrix
// Market uploads), runs them on a bounded scheduler whose jobs share
// one machine-wide worker pool, serves repeat submissions from a
// content-addressed result cache, and persists completed results as
// distio bundles so a restart rehydrates the cache.
//
//	mgserve -addr :8080 -data /var/lib/mgserve
//
// Beyond single-node operation, mgserve runs in two cluster roles (see
// internal/cluster):
//
//	mgserve -router -shards a:8081,b:8082        # stateless router
//	mgserve -addr a:8081 -node a:8081 \
//	        -peers a:8081,b:8082 -data /var/a    # one shard
//
// A router owns no jobs and no cache: it hashes each submission to its
// content-addressed cache key, proxies it to the shard owning that key
// on the consistent-hash ring, and fails over along the key's replica
// set when a shard is unreachable or draining. Shards fetch missing
// cache entries from ring peers before computing and replicate hot
// entries to the key's other replicas. Routers and shards must agree on
// the shard list (-shards here, -peers there) and corpus options.
//
// Membership is live (see internal/cluster/membership): a new shard
// joins a running cluster with -join <seed> — it fetches the seed's
// member list, announces itself at the next ring epoch, and
// bulk-rehydrates exactly the cache keys that remapped to it — and a
// shard started with -leave-on-term turns SIGTERM into a planned leave:
// announce departure, drain, hand every owned cache entry to its new
// owner, linger, exit. Routers follow membership by polling
// (-membership-poll) and by the epoch handshake on every routed
// submission.
//
// SIGINT/SIGTERM begin a graceful drain: readiness drops (so routers
// stop routing here), new submissions are refused with 503, every
// accepted job runs to completion (and persists), then — after -linger,
// which gives clients time for trailing status polls — the HTTP
// listener shuts down. See internal/service for the API contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mediumgrain/internal/cluster"
	"mediumgrain/internal/cluster/membership"
	"mediumgrain/internal/corpus"
	"mediumgrain/internal/faults"
	"mediumgrain/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mgserve: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "shared engine pool size (0 = GOMAXPROCS)")
		runners     = flag.Int("runners", 2, "concurrently executing jobs")
		queue       = flag.Int("queue", 64, "admission queue depth")
		cacheSize   = flag.Int("cache", 256, "result cache entries")
		dataDir     = flag.String("data", "", "persist results here and rehydrate on start (empty = off)")
		corpusScale = flag.Int("corpus-scale", 0, "corpus scale (0 = default)")
		corpusSeed  = flag.Int64("corpus-seed", 0, "corpus seed (0 = default)")
		timeout     = flag.Duration("timeout", 5*time.Minute, "default per-job timeout")
		salvage     = flag.Bool("salvage", false, "salvage-on-cancel: let timed-out/canceled computations finish in the background and cache their results instead of canceling their context")

		// Cluster roles.
		router    = flag.Bool("router", false, "run as a stateless cluster router over -shards instead of a compute shard")
		shards    = flag.String("shards", "", "router mode: comma-separated shard addresses (host:port)")
		node      = flag.String("node", "", "shard mode: this shard's own address as listed in -peers")
		peers     = flag.String("peers", "", "shard mode: comma-separated addresses of every shard, this one included")
		replicas  = flag.Int("replicas", 2, "replica-set size K: the owner plus K-1 ring successors hold each hot key")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the hash ring")
		replAfter = flag.Int64("replicate-after", cluster.DefaultReplicateAfter, "shard mode: cache hits after which an entry replicates to its other ring replicas")
		secret    = flag.String("cluster-secret", os.Getenv("MGSERVE_CLUSTER_SECRET"), "shared secret authenticating the peer /cache and /cluster endpoints; must match on every shard and router (default $MGSERVE_CLUSTER_SECRET; empty leaves them open — trusted networks only)")
		linger    = flag.Duration("linger", 0, "after draining, keep serving reads this long before closing the listener (lets clients finish trailing status polls)")

		// Resilience and chaos testing.
		faultSpec  = flag.String("fault-spec", os.Getenv("MGSERVE_FAULTS"), "deterministic fault-injection schedule, e.g. \"shard1:err503:rate=0.2;all:delay=100ms:count=5\" (default $MGSERVE_FAULTS; empty = off)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for the fault schedule's probabilistic rules (same seed + same traffic = same faults)")
		faultLabel = flag.String("fault-label", "", "label this process matches against fault-spec targets (default: the -node address for shards, \"router\" for routers)")
		brkThresh  = flag.Int("breaker-threshold", 0, "consecutive peer failures before a circuit opens (0 = default)")
		brkBase    = flag.Duration("breaker-base", 0, "base open interval for a tripped circuit, doubling per trip (0 = default)")
		brkMax     = flag.Duration("breaker-max", 0, "cap on the open interval (0 = default)")
		hedge      = flag.Duration("hedge-delay", 0, "router mode: duplicate a status/result read still unanswered after this long (0 = default, negative = off)")

		// Live membership.
		join           = flag.String("join", "", "shard mode: join a running cluster by fetching membership from this seed shard (host:port) instead of listing every peer in -peers")
		leaveOnTerm    = flag.Bool("leave-on-term", false, "shard mode: turn SIGTERM into a planned leave — announce departure, drain, hand every owned cache entry to its new owner, then exit")
		rehydratePause = flag.Duration("rehydrate-pause", 25*time.Millisecond, "shard mode: pause between bulk-rehydration entry pulls after a join (rate-limits the load on donors)")
		membershipPoll = flag.Duration("membership-poll", 15*time.Second, "router mode: interval for polling shards for membership changes (0 = rely on the per-request epoch handshake only)")
	)
	flag.Parse()

	inj, err := faults.New(*faultSpec, *faultSeed)
	if err != nil {
		log.Fatalf("-fault-spec: %v", err)
	}
	if inj != nil {
		log.Printf("fault injection ON (seed=%d): %s", *faultSeed, inj)
	}
	breaker := cluster.BreakerConfig{
		Threshold: *brkThresh,
		Backoff:   cluster.Backoff{Base: *brkBase, Max: *brkMax},
	}

	if *router {
		runRouter(*addr, *shards, *vnodes, *replicas, *corpusScale, *corpusSeed, *secret, *membershipPoll,
			inj, breaker, *hedge)
		return
	}

	var (
		clu        *cluster.ShardConfig
		members    *membership.Set
		beforeRing *cluster.Ring // pre-join ring: rehydration sources
		announce   bool          // broadcast our join once the listener is up
	)
	if *peers != "" || *node != "" || *join != "" {
		var err error
		members, beforeRing, announce, err = buildMembership(*join, *node, *peers, *vnodes, *replicas, *secret)
		if err != nil {
			log.Fatalf("%v", err)
		}
		ring := members.Ring()
		if !ring.Contains(*node) {
			log.Fatalf("-node %q is not in the member set %v", *node, ring.Nodes())
		}
		clu = &cluster.ShardConfig{Self: *node, Ring: ring, ReplicateAfter: *replAfter, Secret: *secret, Breaker: breaker}
		if inj != nil {
			// Outbound peer traffic (fetch, replicate, handoff) passes
			// through the same fault schedule as inbound requests.
			clu.Client = &http.Client{Timeout: 30 * time.Second, Transport: inj.RoundTripper(nil)}
		}
		if *secret == "" {
			log.Printf("warning: no -cluster-secret; peer /cache and /cluster endpoints accept pushes from anyone who can reach them")
		}
		log.Printf("shard %s of %d-node ring %v (epoch=%s, replicas=%d, vnodes=%d)",
			cluster.NormalizeNode(*node), len(ring.Nodes()), ring.Nodes(), ring.Epoch(), ring.ReplicaCount(), ring.VNodes())
	}

	srv, warns := service.New(service.Config{
		Workers:         *workers,
		Runners:         *runners,
		QueueDepth:      *queue,
		CacheEntries:    *cacheSize,
		DataDir:         *dataDir,
		DefaultTimeout:  *timeout,
		CorpusScale:     *corpusScale,
		CorpusSeed:      *corpusSeed,
		SalvageOnCancel: *salvage,
		Cluster:         clu,
		Members:         members,
	})
	for _, w := range warns {
		log.Printf("startup: %v", w)
	}
	st := srv.Stats()
	log.Printf("listening on %s (workers=%d runners=%d queue=%d cache=%d/%d rehydrated)",
		*addr, st.Workers, st.Runners, st.QueueCap, st.Cache.Entries, st.Cache.Capacity)

	handler := srv.Handler()
	if inj != nil {
		label := *faultLabel
		if label == "" && *node != "" {
			label = cluster.NormalizeNode(*node)
		}
		if label == "" {
			label = "self"
		}
		handler = inj.Middleware(label, handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	// Joining a live cluster: announce ourselves (peers adopt the new
	// epoch; routers learn it by poll or by the first 409) and then
	// bulk-rehydrate the keys that remapped to us, in the background so
	// serving starts immediately. A rejoin (announce=false) skips the
	// broadcast but still rehydrates whatever it missed while away.
	bgCtx, bgCancel := context.WithCancel(context.Background())
	defer bgCancel()
	if beforeRing != nil {
		go func() {
			if announce {
				actx, cancel := context.WithTimeout(bgCtx, 30*time.Second)
				jst, err := membership.Broadcast(actx, &http.Client{Timeout: 30 * time.Second}, members, *secret, "join", *node, *node)
				cancel()
				if err != nil {
					log.Printf("join: broadcast failed (peers converge via 409): %v", err)
				} else {
					log.Printf("join: announced; cluster at epoch %s with %d members", jst.Epoch, len(jst.Members))
				}
			}
			rep := srv.Rehydrate(bgCtx, beforeRing, *rehydratePause)
			log.Printf("rehydrate: scanned %d peer keys, wanted %d, pulled %d, failed %d",
				rep.Scanned, rep.Wanted, rep.Pulled, rep.Failed)
		}()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: draining (refusing new jobs, finishing accepted work)", sig)
	}
	bgCancel() // stop any in-flight rehydration before draining

	// A planned leave announces first — while we are still ready — so
	// routers remap the key space before the drain refuses anything.
	if *leaveOnTerm && clu != nil {
		lctx, lcancel := context.WithTimeout(context.Background(), 30*time.Second)
		lst, err := srv.AnnounceLeave(lctx)
		lcancel()
		if err != nil {
			log.Printf("leave: announcement failed (draining and exiting anyway): %v", err)
		} else {
			log.Printf("leave: announced; cluster now at epoch %s with %d members", lst.Epoch, len(lst.Members))
		}
	}

	srv.Drain()
	st = srv.Stats()
	log.Printf("drained: %d completed, %d failed, cache %d entries (%d hits / %d misses)",
		st.Completed, st.Failed, st.Cache.Entries, st.Cache.Hits, st.Cache.Misses)

	// With the persisted set final (nothing runs past Drain), hand every
	// owned entry to its new owner so the cluster keeps its warm cache.
	if *leaveOnTerm && clu != nil {
		hctx, hcancel := context.WithTimeout(context.Background(), 2*time.Minute)
		done, failed := srv.Handoff(hctx)
		hcancel()
		log.Printf("handoff: pushed %d entries to their new owners, %d failed", done, failed)
	}

	// The listener stays up through the linger window so clients whose
	// jobs just finished can still poll status and fetch results; only
	// new submissions are refused (503 → router failover).
	if *linger > 0 {
		log.Printf("lingering %s for trailing reads", *linger)
		time.Sleep(*linger)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}

// buildMembership constructs the shard's member set. With a -join seed
// it bootstraps from the live cluster: fetch the seed's membership, add
// ourselves at the next counter, and remember the pre-join ring so
// rehydration knows which nodes hold the keys that just remapped to us.
// A rejoin (the cluster still lists us, e.g. a crash before any leave)
// adopts the seed's view unchanged and skips the announcement — the
// epoch must not move when ownership doesn't. Without -join the set
// starts from the static -peers list at counter 1, exactly the
// pre-membership boot, but mutable from here on.
func buildMembership(join, node, peers string, vnodes, replicas int, secret string) (set *membership.Set, beforeRing *cluster.Ring, announce bool, err error) {
	if join == "" {
		set, err = membership.New(splitList(peers), vnodes, replicas)
		if err != nil {
			return nil, nil, false, fmt.Errorf("peer ring: %w", err)
		}
		return set, nil, false, nil
	}
	if node == "" {
		return nil, nil, false, fmt.Errorf("-join requires -node (this shard's own address)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	seed, err := cluster.FetchMembers(ctx, &http.Client{Timeout: 30 * time.Second}, join, secret)
	if err != nil {
		return nil, nil, false, fmt.Errorf("join: fetching membership from seed %s: %w", join, err)
	}
	joined, err := membership.Mutate(seed.Members, "join", node)
	if err != nil {
		// Rejoin: adopt the cluster's view as-is. Rehydration sources are
		// the other members — we may have missed entries while away.
		log.Printf("join: %v; rejoining at epoch %s", err, seed.Epoch)
		set, err = membership.NewAt(seed.Members, vnodes, replicas, seed.Counter)
		if err != nil {
			return nil, nil, false, fmt.Errorf("join: %w", err)
		}
		if old, merr := membership.Mutate(seed.Members, "leave", node); merr == nil {
			beforeRing, _ = cluster.NewRingAt(old, vnodes, replicas, seed.Counter)
		}
		return set, beforeRing, false, nil
	}
	set, err = membership.NewAt(joined, vnodes, replicas, seed.Counter+1)
	if err != nil {
		return nil, nil, false, fmt.Errorf("join: %w", err)
	}
	beforeRing, err = cluster.NewRingAt(seed.Members, vnodes, replicas, seed.Counter)
	if err != nil {
		return nil, nil, false, fmt.Errorf("join: seed ring: %w", err)
	}
	return set, beforeRing, true, nil
}

// runRouter serves the stateless router role: no jobs, no cache, no
// drain protocol — SIGTERM just closes the listener (in-flight proxied
// requests finish via Shutdown's grace period). The router follows
// cluster membership two ways: a poll loop every -membership-poll, and
// the epoch handshake on every routed submission (a disagreeing shard
// answers a structured 409 the router resolves by refreshing and
// retrying).
func runRouter(addr, shards string, vnodes, replicas, corpusScale int, corpusSeed int64, secret string, poll time.Duration,
	inj *faults.Injector, breaker cluster.BreakerConfig, hedge time.Duration) {
	nodes := splitList(shards)
	if len(nodes) == 0 {
		log.Fatalf("-router needs -shards host:port,host:port,...")
	}
	// The router keys named-corpus submissions without materializing
	// matrices per request: it builds the same corpus the shards run
	// with, once, and keeps only the name → matrix-hash table.
	opts := corpus.DefaultOptions()
	if corpusScale > 0 {
		opts.Scale = corpusScale
	}
	if corpusSeed != 0 {
		opts.Seed = corpusSeed
	}
	hashes := make(map[string]string)
	for _, in := range corpus.Build(opts) {
		hashes[in.Name] = cluster.MatrixHash(in.A)
	}
	set, err := membership.New(nodes, vnodes, replicas)
	if err != nil {
		log.Fatalf("router ring: %v", err)
	}
	cfg := cluster.RouterConfig{
		Members:      set,
		VNodes:       vnodes,
		Replicas:     replicas,
		CorpusHashes: hashes,
		Secret:       secret,
		Breaker:      breaker,
		RetryBackoff: breaker.Backoff,
		HedgeDelay:   hedge,
	}
	if inj != nil {
		cfg.WrapTransport = inj.RoundTripper
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	ring := rt.Ring()
	log.Printf("router on %s over %d shards %v (epoch=%s, replicas=%d, vnodes=%d)",
		addr, len(ring.Nodes()), ring.Nodes(), ring.Epoch(), ring.ReplicaCount(), ring.VNodes())

	if poll > 0 {
		go func() {
			t := time.NewTicker(poll)
			defer t.Stop()
			for range t.C {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := rt.RefreshMembership(ctx); err != nil {
					log.Printf("membership poll: %v", err)
				}
				cancel()
			}
		}()
	}

	httpSrv := &http.Server{Addr: addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("listener: %v", err)
	case sig := <-sigCh:
		log.Printf("%s: shutting down router", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
}

// splitList parses a comma-separated address list, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
