// Command benchdiff compares two mgbench JSON reports grid point by grid
// point and fails when partitioning quality regresses:
//
//	benchdiff old.json new.json            # default 5% volume tolerance
//	benchdiff -vol-tol 0.10 old.json new.json
//
// Wall-time and allocation changes are reported but never fail the run —
// CI machines are too noisy for hard time gates — while a communication
// volume more than the tolerance above the baseline on any common grid
// point exits nonzero. `make bench-diff OLD=a.json NEW=b.json` is the
// Makefile entry point.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mediumgrain/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")

	volTol := flag.Float64("vol-tol", 0.05, "allowed fractional volume regression per grid point")
	flag.Parse()
	if flag.NArg() != 2 {
		log.Fatalf("usage: benchdiff [-vol-tol F] OLD.json NEW.json")
	}

	oldRep, err := readReport(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	newRep, err := readReport(flag.Arg(1))
	if err != nil {
		log.Fatal(err)
	}

	if oldRep.ExactFM != newRep.ExactFM {
		// Per-seed volumes legitimately differ between the FM modes;
		// gating one against the other would misattribute the delta.
		log.Fatalf("FM mode mismatch: old report exact_fm=%t, new report exact_fm=%t — regenerate the reports in one mode",
			oldRep.ExactFM, newRep.ExactFM)
	}
	if normTries(oldRep.Tries) != normTries(newRep.Tries) {
		// Best-of-N volumes are not comparable to single-run volumes (or
		// to a different N): the gate would credit search width as a
		// quality change of the code under test.
		log.Fatalf("search width mismatch: old report tries=%d, new report tries=%d — regenerate the reports with one -tries setting",
			normTries(oldRep.Tries), normTries(newRep.Tries))
	}
	if oldRep.ParallelFM != newRep.ParallelFM {
		// Unlike ExactFM this is a warning, not a refusal: the volume
		// gate below is exactly how the parallel refinement mode is held
		// to the serial baseline's quality, so cross-mode comparisons are
		// intended — but flagged, since wall deltas mix in the mode's own
		// speed effect.
		log.Printf("warning: FM parallelism differs (old parallel_fm=%t, new parallel_fm=%t); volume gate applies across modes, wall deltas reflect the mode change too",
			oldRep.ParallelFM, newRep.ParallelFM)
	}
	if oldRep.Workers != 0 && newRep.Workers != 0 && oldRep.Workers != newRep.Workers {
		// Pre-PR-7 reports decode Workers as 0 (unknown) — only warn when
		// both sides actually recorded their count.
		log.Printf("warning: worker counts differ (old workers=%d, new workers=%d); wall times and speedups are not comparable",
			oldRep.Workers, newRep.Workers)
	}
	if oldRep.GOMAXPROCS != newRep.GOMAXPROCS {
		log.Printf("warning: GOMAXPROCS differs (old %d, new %d); wall times are not comparable",
			oldRep.GOMAXPROCS, newRep.GOMAXPROCS)
	}

	rows := report.DiffBench(oldRep, newRep)
	fmt.Print(report.FormatDiff(rows))
	if wallGeo, bytesGeo, wallN, bytesN := report.PerfSummary(rows); wallN > 0 || bytesN > 0 {
		// Informational only — CI machines are too noisy for hard time
		// gates — but logged on every run so the CI history doubles as
		// the perf trend record.
		fmt.Printf("\nperf (geomean, new/old):")
		if wallN > 0 {
			fmt.Printf(" wall %.3fx over %d points", wallGeo, wallN)
		}
		if bytesN > 0 {
			fmt.Printf("  bytes/op %.3fx over %d points", bytesGeo, bytesN)
		}
		fmt.Println()
	}

	bad := report.VolumeRegressions(rows, *volTol)
	if len(bad) > 0 {
		fmt.Printf("\n%d grid point(s) regressed volume by more than %.0f%%:\n", len(bad), *volTol*100)
		for _, r := range bad {
			if r.OldVolume == 0 {
				fmt.Printf("  %s p=%d workers=%d: volume 0 -> %d (baseline was perfect)\n",
					r.Matrix, r.P, r.Workers, r.NewVolume)
			} else {
				fmt.Printf("  %s p=%d workers=%d: volume %d -> %d (+%.1f%%)\n",
					r.Matrix, r.P, r.Workers, r.OldVolume, r.NewVolume, (r.VolumeRatio-1)*100)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("\nno volume regression beyond %.0f%% on %d common grid points\n", *volTol*100, len(rows))
}

// normTries folds the two spellings of "no search" together: reports
// from before the tries field decode as 0, new single-run reports say 1.
func normTries(tries int) int {
	if tries < 1 {
		return 1
	}
	return tries
}

func readReport(path string) (*report.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return report.ReadBenchJSON(f)
}
