// Command mggen generates synthetic sparse test matrices in Matrix
// Market format — the same generators that build the evaluation corpus.
//
// Usage:
//
//	mggen -kind lap2d -n 32 -out grid.mtx
//	mggen -kind powerlaw -n 1000 -d 4 -seed 3 -out web.mtx
//	mggen -kind bipartite -m 5000 -n 800 -d 5 -out termdoc.mtx
//
// Kinds: lap2d, lap3d, tridiag, banded, powerlaw, erdos, bipartite,
// blockdiag, arrow, gd97like.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"mediumgrain/internal/corpus"
	"mediumgrain/internal/gen"
	"mediumgrain/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mggen: ")

	var (
		kind    = flag.String("kind", "lap2d", "generator kind")
		m       = flag.Int("m", 100, "rows (or first grid dimension)")
		n       = flag.Int("n", 100, "cols (or second grid dimension)")
		k       = flag.Int("k", 10, "third grid dimension (lap3d)")
		d       = flag.Int("d", 4, "degree / nonzeros-per-row / bandwidth")
		density = flag.Float64("density", 0.01, "density (erdos)")
		blocks  = flag.Int("blocks", 8, "blocks (blockdiag)")
		seed    = flag.Int64("seed", 1, "random seed")
		outPath = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var a *sparse.Matrix
	switch *kind {
	case "lap2d":
		a = gen.Laplacian2D(*m, *n)
	case "lap3d":
		a = gen.Laplacian3D(*m, *n, *k)
	case "tridiag":
		a = gen.Tridiagonal(*n)
	case "banded":
		a = gen.Banded(*n, *d, *d)
	case "powerlaw":
		a = gen.PowerLawGraph(rng, *n, *d)
	case "erdos":
		a = gen.ErdosRenyi(rng, *m, *n, *density)
	case "bipartite":
		a = gen.RandomBipartite(rng, *m, *n, *d)
	case "blockdiag":
		a = gen.BlockDiagonal(rng, *n, *blocks, *d**n/10)
	case "arrow":
		a = gen.Arrow(*n)
	case "gd97like":
		a = corpus.GD97Like(*seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if err := sparse.WriteMatrixMarket(out, a); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %v (class %v)\n", a, a.Classify())
}
