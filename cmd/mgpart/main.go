// Command mgpart partitions a sparse matrix for parallel sparse
// matrix-vector multiplication using the medium-grain method (or any of
// the baseline methods) and reports the quality of the result.
//
// Usage:
//
//	mgpart -in matrix.mtx [-method MG] [-p 2] [-eps 0.03] [-ir]
//	       [-engine mondriaan|alt] [-seed 1] [-workers N] [-out parts.txt]
//	       [-tries N] [-budget 30s] [-parallel-fm]
//
// With -tries N > 1 the run races N deterministic seed variants
// (seed..seed+N-1) and keeps the lowest-volume result; -budget bounds
// the race's wall time.
//
// The output lists one part id per nonzero, in the (row-sorted) order of
// the input file's nonzeros after canonicalization.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"

	"mediumgrain"
	"mediumgrain/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgpart: ")

	var (
		inPath     = flag.String("in", "", "input Matrix Market file (required)")
		method     = flag.String("method", "MG", "method: MG, LB, FG, RN, CN")
		p          = flag.Int("p", 2, "number of parts")
		eps        = flag.Float64("eps", 0.03, "allowed load imbalance")
		ir         = flag.Bool("ir", false, "apply iterative refinement")
		engine     = flag.String("engine", "mondriaan", "hypergraph engine: mondriaan or alt")
		exactFM    = flag.Bool("exact-fm", false, "exact all-vertex FM passes (historical behavior) instead of the boundary-driven default")
		parallelFM = flag.Bool("parallel-fm", false, "parallel refinement layers (coarse-level try racing + speculative boundary batches); needs -workers != 0")
		seed       = flag.Int64("seed", 1, "random seed")
		tries      = flag.Int("tries", 1, "race-to-best search width (>1 races seed variants seed..seed+N-1)")
		budget     = flag.Duration("budget", 0, "wall-time budget for the search race (0 = none)")
		varyFM     = flag.Bool("vary-fm", false, "race both FM modes across the search tries (odd tries flip -exact-fm)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the parallel engine (0 = sequential legacy path)")
		outPath    = flag.String("out", "", "write part assignment (one id per line)")
		spy        = flag.Bool("spy", false, "print an ASCII spy plot of the partitioned matrix")
		stats      = flag.Bool("stats", false, "print per-part statistics and the lambda histogram")
		distDir    = flag.String("dist", "", "write a distributed bundle (<dir>/<matrixbase>.{mtx,parts,invec,outvec})")
		kway       = flag.Bool("kway", false, "apply direct k-way refinement after recursive bisection")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	a, err := mediumgrain.ReadMatrixMarketFile(*inPath)
	if err != nil {
		log.Fatalf("reading %s: %v", *inPath, err)
	}
	a.Canonicalize()

	m, err := mediumgrain.ParseMethod(*method)
	if err != nil {
		log.Fatal(err)
	}
	if *workers < 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	var pcfg mediumgrain.PartitionerConfig
	switch *engine {
	case "mondriaan":
		pcfg = mediumgrain.MondriaanLikeConfig()
	case "alt":
		pcfg = mediumgrain.AltConfig()
	default:
		log.Fatalf("unknown engine %q (want mondriaan or alt)", *engine)
	}
	pcfg.ExactFM = *exactFM
	pcfg.ParallelFM = *parallelFM
	// One reusable engine runs the partitioning and any post-refinement;
	// ^C-style cancellation would only need a signal-bound context here.
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: *workers, Partitioner: pcfg})
	ctx := context.Background()

	epsReq := *eps
	if epsReq == 0 {
		epsReq = -1 // Request: 0 means default; negative asks exact balance
	}
	req := mediumgrain.Request{
		Matrix: a,
		P:      *p,
		Method: m,
		Seed:   *seed,
		Eps:    epsReq,
		Refine: *ir,
	}
	var winnerTry atomic.Int64
	if *tries > 1 {
		req.Search = mediumgrain.Search{Tries: *tries, Budget: *budget, VaryFM: *varyFM}
		req.Progress = func(ev mediumgrain.Event) {
			if ev.Stage == mediumgrain.StageDone {
				winnerTry.Store(int64(ev.Try))
			}
		}
	}
	res, err := eng.Partition(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if *kway {
		before := res.Volume
		refined, err := eng.Refine(ctx, mediumgrain.Request{
			Matrix: a,
			P:      *p,
			Method: m,
			Seed:   *seed + 1, // a fresh stream for the refinement pass
			Eps:    epsReq,
			Parts:  res.Parts,
		})
		if err != nil {
			log.Fatal(err)
		}
		res = refined
		fmt.Printf("k-way refinement: volume %d -> %d\n", before, res.Volume)
	}

	fmt.Printf("matrix:    %v (class %v)\n", a, a.Classify())
	fmt.Printf("method:    %v  refine=%v  engine=%s  exactfm=%v  parallelfm=%v  p=%d  eps=%g  workers=%d\n", m, *ir, *engine, *exactFM, *parallelFM, *p, *eps, *workers)
	if *tries > 1 {
		fmt.Printf("search:    tries=%d budget=%v vary-fm=%v  winner: try %d (seed %d)\n",
			*tries, *budget, *varyFM, winnerTry.Load(), *seed+winnerTry.Load()-1)
	}
	fmt.Printf("volume:    %d\n", res.Volume)
	fmt.Printf("imbalance: %.4f (allowed %.4f)\n", mediumgrain.Imbalance(res.Parts, *p), *eps)
	fmt.Printf("BSP cost:  %d\n", mediumgrain.BSPCost(a, res.Parts, *p))

	if *spy {
		fmt.Println()
		fmt.Print(report.Spy(a, res.Parts, 64))
	}
	if *stats {
		fmt.Println()
		fmt.Print(report.Stats(a, res.Parts, *p))
		fmt.Println()
		fmt.Print(report.LambdaHistogram(a, res.Parts, *p))
	}

	if *distDir != "" {
		bundle, err := mediumgrain.NewDistributedBundle(a, res.Parts, *p, nil)
		if err != nil {
			log.Fatal(err)
		}
		base := strings.TrimSuffix(filepath.Base(*inPath), filepath.Ext(*inPath))
		if err := mediumgrain.WriteDistributed(*distDir, base, bundle); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distributed bundle written to %s/%s.{mtx,parts,invec,outvec}\n", *distDir, base)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, pt := range res.Parts {
			fmt.Fprintln(w, pt)
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partition written to %s\n", *outPath)
	}
}
