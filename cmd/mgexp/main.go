// Command mgexp regenerates every figure and table of the paper's
// evaluation (see the per-experiment index in DESIGN.md):
//
//	mgexp -exp fig3    # Fig. 3  gd97_b-style anecdote
//	mgexp -exp fig4    # Fig. 4  volume performance profiles (4 panels)
//	mgexp -exp fig5    # Fig. 5  time performance profile
//	mgexp -exp table1  # Table I geometric means (volume, time)
//	mgexp -exp fig6    # Fig. 6  volume profiles, alternative engine, p=2/64
//	mgexp -exp table2  # Table II geometric means (volume, BSP cost)
//	mgexp -exp optstudy # heuristics vs exact optima on tiny matrices
//	mgexp -exp symvec   # symmetric vector distribution overhead
//	mgexp -exp all     # everything
//
// -runs, -scale, and -seed trade time for fidelity; the defaults finish
// in minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"mediumgrain/internal/corpus"
	"mediumgrain/internal/experiments"
	"mediumgrain/internal/hgpart"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgexp: ")

	var (
		exp     = flag.String("exp", "all", "experiment: fig3, fig4, fig5, table1, fig6, table2, optstudy, symvec, all")
		runs    = flag.Int("runs", 3, "runs per (matrix, method); the paper uses 10")
		scale   = flag.Int("scale", 1, "corpus scale factor")
		seed    = flag.Int64("seed", 7, "random seed")
		p64     = flag.Int("p", 64, "large part count for fig6(b)/table2")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "matrices evaluated concurrently")
		engineW = flag.Int("engine-workers", 0, "core.Options.Workers per partitioning call (0 = sequential legacy engine); use with -workers 1 for single-large-matrix sweeps")
	)
	flag.Parse()
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "mgexp: exp=%s runs=%d scale=%d seed=%d workers=%d engine-workers=%d\n",
		*exp, *runs, *scale, *seed, *workers, *engineW)

	instances := corpus.Build(corpus.Options{Scale: *scale, Seed: *seed})
	specs := experiments.PaperMethods()
	names := experiments.MethodNames(specs)

	var mondriaanResults, altResults, altResultsP []experiments.MatrixResult
	needMondriaan := *exp == "fig4" || *exp == "fig5" || *exp == "table1" || *exp == "all"
	needAlt := *exp == "fig6" || *exp == "table2" || *exp == "all"

	if needMondriaan {
		opts := experiments.DefaultRunOptions()
		opts.Runs, opts.Seed, opts.Workers, opts.EngineWorkers = *runs, *seed, *workers, *engineW
		opts.Config = hgpart.ConfigMondriaanLike()
		var err error
		fmt.Fprintf(os.Stderr, "running %d matrices x %d methods x %d runs (mondriaan-like engine)...\n",
			len(instances), len(specs), *runs)
		mondriaanResults, err = experiments.Run(instances, specs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}
	if needAlt {
		opts := experiments.DefaultRunOptions()
		opts.Runs, opts.Seed, opts.Workers, opts.EngineWorkers = *runs, *seed, *workers, *engineW
		opts.Config = hgpart.ConfigAlt()
		var err error
		fmt.Fprintf(os.Stderr, "running %d matrices x %d methods x %d runs (alt engine, p=2)...\n",
			len(instances), len(specs), *runs)
		altResults, err = experiments.Run(instances, specs, opts)
		if err != nil {
			log.Fatal(err)
		}
		opts.P = *p64
		fmt.Fprintf(os.Stderr, "running %d matrices x %d methods x %d runs (alt engine, p=%d)...\n",
			len(instances), len(specs), *runs, *p64)
		altResultsP, err = experiments.Run(instances, specs, opts)
		if err != nil {
			log.Fatal(err)
		}
	}

	show := func(id string) bool { return *exp == id || *exp == "all" }

	if show("fig3") {
		res, err := experiments.RunFig3(100, *seed, 0.03, hgpart.ConfigMondriaanLike())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Report())
	}
	if show("fig4") {
		fmt.Println(experiments.Fig4Report(mondriaanResults, names))
	}
	if show("fig5") {
		fmt.Println(experiments.Fig5Report(mondriaanResults, names))
	}
	if show("table1") {
		fmt.Println(experiments.Table1Report(mondriaanResults, names))
	}
	if show("fig6") {
		fmt.Println(experiments.Fig6Report(altResults, names,
			"Fig. 6(a) — volume profile, alternative engine, p = 2"))
		fmt.Println(experiments.Fig6Report(altResultsP, names,
			fmt.Sprintf("Fig. 6(b) — volume profile, alternative engine, p = %d", *p64)))
	}
	if show("table2") {
		fmt.Println(experiments.Table2Report(altResults, names, 2))
		fmt.Println(experiments.Table2Report(altResultsP, names, *p64))
	}
	if show("optstudy") {
		res, err := experiments.RunOptStudy(40, 24, 10, *seed, hgpart.ConfigMondriaanLike())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.OptStudyReport(res))
	}
	if show("symvec") {
		res, err := experiments.RunSymVec(instances, 4, *seed, hgpart.ConfigMondriaanLike())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.SymVecReport(res))
	}
}
