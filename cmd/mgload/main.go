// Command mgload is a closed-loop load generator for the mgserve
// daemon, in the style of transaction-benchmark drivers: N client
// goroutines each submit a partition job, poll it to completion, record
// the end-to-end latency, and immediately submit the next one. Job
// specs are drawn from a Zipf-skewed mix over (corpus matrix, p, seed),
// so the run exercises both the cache head (hot specs repeat and should
// hit) and the scheduler tail (cold specs compute under contention).
//
//	mgload -addr http://127.0.0.1:8080 -clients 32 -requests 10 -verify
//
// With -targets, requests round-robin over several base URLs instead of
// one — a cluster router, direct shards, or a mix — and the report
// breaks the run down per target (client-side counts plus each target's
// own /stats snapshot). Verification always goes through the first
// target.
//
//	mgload -targets http://127.0.0.1:8090,http://127.0.0.1:8081 -verify
//
// With -verify, every unique spec's served parts vector is compared
// against the library's own offline result — the determinism guarantee
// of the service — by rebuilding the server's corpus locally from the
// scale and seed advertised by GET /corpus. The run's throughput,
// latency percentiles (split by cache hit/miss), per-spec breakdown,
// and a final /stats snapshot are written as a JSON report
// (schema "mediumgrain-load/2") with -out.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mediumgrain/internal/core"
	"mediumgrain/internal/corpus"
	"mediumgrain/internal/report"
	"mediumgrain/internal/service"
	"mediumgrain/internal/sparse"
)

// httpc bounds every individual HTTP call so a hung or blackholed
// server fails the request instead of wedging a client goroutine (the
// -timeout flag only governs the submit-to-done polling deadline).
var httpc = &http.Client{Timeout: 30 * time.Second}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mgload: ")

	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "mgserve base URL")
		targetsCSV = flag.String("targets", "", "comma-separated mgserve base URLs to drive round-robin (overrides -addr); verification uses the first")
		clients    = flag.Int("clients", 32, "concurrent closed-loop clients")
		requests   = flag.Int("requests", 10, "requests per client (ignored when -duration > 0)")
		duration   = flag.Duration("duration", 0, "run for this long instead of a fixed request count")
		matrices   = flag.String("matrices", "lap2d-24,tridiag,band-5,bip-tall", "comma-separated corpus names")
		psFlag     = flag.String("ps", "2,4,8", "comma-separated part counts")
		seeds      = flag.Int("seeds", 2, "partitioning seeds per (matrix, p): 1..n")
		method     = flag.String("method", "MG", "partitioning method")
		workers    = flag.Int("workers", 2, "job spec workers field (0 = sequential engine)")
		exactFM    = flag.Bool("exact-fm", false, "request exact all-vertex FM passes instead of the boundary-driven default")
		parallelFM = flag.Bool("parallel-fm", false, "request the parallel refinement layers (coarse-level try racing + speculative boundary batches)")
		theta      = flag.Float64("zipf", 0.9, "Zipf skew over the spec space (0 = uniform)")
		seed       = flag.Int64("seed", 1, "load-generator RNG seed")
		poll       = flag.Duration("poll", 2*time.Millisecond, "poll interval while a job runs")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-request completion deadline")
		outPath    = flag.String("out", "", "write the JSON load report here")
		verify     = flag.Bool("verify", false, "compare every unique spec's parts against the offline library")
		retries    = flag.Int("retries", 0, "resubmit a rejected/errored request up to this many times (with growing backoff) before counting it as an error")
		maxErrRate = flag.Float64("max-error-rate", -1, "exit nonzero when errors/requests exceeds this fraction (negative = no gate; 0 = any error fails the run)")
	)
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}

	targets := buildTargets(*targetsCSV, *addr)
	primary := targets[0]

	specs := buildSpecs(*matrices, *psFlag, *seeds, *method, *workers, *exactFM, *parallelFM)
	if len(specs) == 0 {
		log.Fatal("empty spec space")
	}
	cdf := zipfCDF(len(specs), *theta)
	log.Printf("%d clients, %d specs (zipf theta=%g), %d target(s) starting at %s",
		*clients, len(specs), *theta, len(targets), primary)

	for _, t := range targets {
		if err := waitHealthy(t, 10*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	loadStart := time.Now()
	results := runLoad(targets, specs, cdf, *clients, *requests, *duration, *seed, *poll, *timeout, *retries)
	elapsed := time.Since(loadStart)

	rep := assemble(results, specs, targets, elapsed, *clients, *seed, *theta)
	// Snapshot /stats before verification: verifyAll re-submits every
	// unique spec, which would inflate the server-side counters the
	// report attributes to the load run itself.
	if raw, err := fetchRaw(primary + "/stats"); err == nil {
		rep.ServerStats = raw
	}
	for i := range rep.PerTarget {
		if raw, err := fetchRaw(rep.PerTarget[i].Addr + "/stats"); err == nil {
			rep.PerTarget[i].Stats = raw
		}
	}
	if *verify {
		verifyAll(primary, specs, results, rep, *poll, *timeout)
	}

	printSummary(rep)
	if *outPath != "" {
		if err := rep.WriteJSONFile(*outPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *outPath)
	}
	if rep.VerifyFailures > 0 {
		os.Exit(1)
	}
	// A verify run that verified nothing (every request failed or was
	// rejected) must not pass: CI gates on this exit code.
	if *verify && rep.Verified == 0 {
		log.Print("verify: no successful requests to verify")
		os.Exit(1)
	}
	// Likewise, server-side job failures are a broken service even
	// though their specs never reach the verification map (503
	// admission rejections and transport errors, by contrast, are
	// expected under deliberate overload).
	if *verify {
		var failedJobs int64
		for _, s := range results {
			if s.failed {
				failedJobs++
			}
		}
		if failedJobs > 0 {
			log.Printf("verify: %d jobs failed server-side", failedJobs)
			os.Exit(1)
		}
	}
	// The chaos-smoke acceptance gate: under fault injection the cluster
	// must still answer every client, so the smoke runs with
	// -max-error-rate 0 and any surviving error fails the process.
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		log.Printf("error rate %.4f exceeds -max-error-rate %.4f (%d/%d requests failed)",
			rep.ErrorRate, *maxErrRate, rep.Errors, rep.Requests)
		os.Exit(1)
	}
}

// buildTargets resolves the driven base-URL list: -targets when given,
// else the single -addr. Trailing slashes are stripped so path joins
// stay uniform.
func buildTargets(csv, addr string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if p := strings.TrimRight(strings.TrimSpace(part), "/"); p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []string{strings.TrimRight(addr, "/")}
	}
	return out
}

// buildSpecs crosses matrices × part counts × seeds into the spec space.
func buildSpecs(matrices, psFlag string, seeds int, method string, workers int, exactFM, parallelFM bool) []service.JobSpec {
	var ps []int
	for _, f := range strings.Split(psFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			log.Fatalf("bad -ps entry %q", f)
		}
		ps = append(ps, p)
	}
	if seeds < 1 {
		seeds = 1
	}
	var specs []service.JobSpec
	for _, name := range strings.Split(matrices, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		for _, p := range ps {
			for s := 1; s <= seeds; s++ {
				specs = append(specs, service.JobSpec{
					Corpus: name, P: p, Method: method, Seed: int64(s), Workers: workers,
					ExactFM: exactFM, ParallelFM: parallelFM,
				})
			}
		}
	}
	return specs
}

// zipfCDF returns the cumulative distribution of rank popularity
// P(i) ∝ 1/(i+1)^theta over n specs; theta 0 is uniform.
func zipfCDF(n int, theta float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), theta)
		total += w[i]
	}
	cdf := make([]float64, n)
	var acc float64
	for i := range w {
		acc += w[i] / total
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return cdf
}

func pick(cdf []float64, rng *rand.Rand) int {
	i := sort.SearchFloat64s(cdf, rng.Float64())
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}

// sample is one completed request.
type sample struct {
	spec      int
	target    int // index into the driven target list
	latencyMS float64
	cached    bool
	ok        bool
	// failed marks a job the server executed and reported as failed —
	// distinct from a 503 admission rejection or a transport error.
	failed bool
	// retries counts resubmissions of this request (-retries); a sample
	// that succeeds on a retry is not an error.
	retries int
	jobID   string
}

func waitHealthy(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		resp, err := httpc.Get(addr + "/healthz")
		if err == nil {
			var h struct {
				Status string `json:"status"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			// A draining server also answers 200; loading it would only
			// produce 503s, so insist on "ok".
			if decErr == nil && resp.StatusCode == http.StatusOK && h.Status == "ok" {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy within %s", addr, budget)
}

// runLoad drives the closed loop and returns every sample. With several
// targets each client round-robins across them, so every target sees an
// interleaved share of every client's spec stream.
func runLoad(targets []string, specs []service.JobSpec, cdf []float64, clients, requests int, duration time.Duration, seed int64, poll, timeout time.Duration, retries int) []sample {
	var (
		mu  sync.Mutex
		out []sample
		wg  sync.WaitGroup
	)
	stopAt := time.Time{}
	if duration > 0 {
		stopAt = time.Now().Add(duration)
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(id)))
			var local []sample
			for i := 0; ; i++ {
				if duration > 0 {
					if !time.Now().Before(stopAt) {
						break
					}
				} else if i >= requests {
					break
				}
				si := pick(cdf, rng)
				ti := (id + i) % len(targets)
				s := requestWithRetries(targets[ti], si, specs[si], poll, timeout, retries)
				s.target = ti
				local = append(local, s)
				if !s.ok {
					time.Sleep(5 * time.Millisecond) // back off after rejection/failure
				}
			}
			mu.Lock()
			out = append(out, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	return out
}

// requestWithRetries resubmits a rejected or errored request up to
// `retries` extra times with a growing pause. Server-side job failures
// are not retried: the service is deterministic, so a failed compute
// fails identically on resubmission. Content-addressed cache keys make
// resubmission safe — a retry of work the first attempt actually
// finished is answered from the cache, not recomputed.
func requestWithRetries(addr string, specIdx int, spec service.JobSpec, poll, timeout time.Duration, retries int) sample {
	s := oneRequest(addr, specIdx, spec, poll, timeout)
	for attempt := 0; attempt < retries && !s.ok && !s.failed; attempt++ {
		time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
		s = oneRequest(addr, specIdx, spec, poll, timeout)
		s.retries = attempt + 1
	}
	return s
}

// oneRequest submits a spec and polls it to completion.
func oneRequest(addr string, specIdx int, spec service.JobSpec, poll, timeout time.Duration) sample {
	body, _ := json.Marshal(spec)
	start := time.Now()
	resp, err := httpc.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{spec: specIdx}
	}
	var v service.JobView
	decErr := json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return sample{spec: specIdx}
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		return sample{spec: specIdx}
	case decErr != nil:
		return sample{spec: specIdx}
	}
	deadline := time.Now().Add(timeout)
	for v.State != "done" && v.State != "failed" {
		if !time.Now().Before(deadline) {
			return sample{spec: specIdx, jobID: v.ID}
		}
		time.Sleep(poll)
		jr, err := httpc.Get(addr + "/jobs/" + v.ID)
		if err != nil {
			return sample{spec: specIdx, jobID: v.ID}
		}
		ok := jr.StatusCode == http.StatusOK
		decErr = json.NewDecoder(jr.Body).Decode(&v)
		jr.Body.Close()
		// A non-200 (id aged out of the job history, server restarted)
		// leaves v's state stale; fail fast instead of polling out the
		// whole deadline.
		if !ok || decErr != nil {
			return sample{spec: specIdx, jobID: v.ID}
		}
	}
	return sample{
		spec:      specIdx,
		latencyMS: float64(time.Since(start).Microseconds()) / 1000,
		cached:    v.Cached,
		ok:        v.State == "done",
		failed:    v.State == "failed",
		jobID:     v.ID,
	}
}

// assemble aggregates samples into the load report.
func assemble(samples []sample, specs []service.JobSpec, targets []string, elapsed time.Duration, clients int, seed int64, theta float64) *report.LoadReport {
	rep := report.NewLoadReport(time.Now().UTC().Format(time.RFC3339), targets[0], clients, seed, theta)
	if len(targets) > 1 {
		rep.Targets = targets
	}
	var all, hit, miss []float64
	perSpec := make([]report.LoadEntry, len(specs))
	for i, s := range specs {
		perSpec[i] = report.LoadEntry{Matrix: s.Corpus, P: s.P, Method: s.Method, Seed: s.Seed}
	}
	perTarget := make([]report.LoadTargetEntry, len(targets))
	for i, t := range targets {
		perTarget[i] = report.LoadTargetEntry{Addr: t}
	}
	specLats := make([][]float64, len(specs))
	for _, s := range samples {
		e := &perSpec[s.spec]
		t := &perTarget[s.target]
		e.Requests++
		t.Requests++
		rep.Requests++
		t.Retries += int64(s.retries)
		rep.Retries += int64(s.retries)
		if !s.ok {
			e.Errors++
			t.Errors++
			rep.Errors++
			continue
		}
		if s.cached {
			e.CacheHits++
			t.CacheHits++
			rep.CacheHits++
			hit = append(hit, s.latencyMS)
		} else {
			miss = append(miss, s.latencyMS)
		}
		all = append(all, s.latencyMS)
		specLats[s.spec] = append(specLats[s.spec], s.latencyMS)
	}
	rep.PerTarget = perTarget
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	rep.Latency = report.LoadLatency{
		Overall: report.SummarizeLatencies(all),
		Hits:    report.SummarizeLatencies(hit),
		Misses:  report.SummarizeLatencies(miss),
	}
	for i := range perSpec {
		perSpec[i].Latency = report.SummarizeLatencies(specLats[i])
	}
	var kept []report.LoadEntry
	for _, e := range perSpec {
		if e.Requests > 0 {
			kept = append(kept, e)
		}
	}
	rep.PerSpec = kept
	rep.SortPerSpec()
	rep.DurationMS = float64(elapsed.Microseconds()) / 1000
	if rep.DurationMS > 0 {
		rep.ThroughputRPS = float64(len(all)) / (rep.DurationMS / 1000)
	}
	return rep
}

// verifyAll checks every requested unique spec against the offline
// library: the acceptance bar for end-to-end determinism under load.
func verifyAll(addr string, specs []service.JobSpec, samples []sample, rep *report.LoadReport, poll, timeout time.Duration) {
	// Rebuild the server's corpus locally.
	raw, err := fetchRaw(addr + "/corpus")
	if err != nil {
		log.Printf("verify: corpus fetch failed: %v", err)
		rep.VerifyFailures++
		return
	}
	var cv struct {
		Scale int   `json:"scale"`
		Seed  int64 `json:"seed"`
	}
	if err := json.Unmarshal(raw, &cv); err != nil {
		log.Printf("verify: corpus decode failed: %v", err)
		rep.VerifyFailures++
		return
	}
	instances := corpus.Build(corpus.Options{Scale: cv.Scale, Seed: cv.Seed})

	requested := make(map[int]bool)
	for _, s := range samples {
		if s.ok {
			requested[s.spec] = true
		}
	}
	for si := range requested {
		spec := specs[si]
		// Re-submit the spec rather than re-fetching a recorded job id:
		// the server's finished-job history is bounded, so ids from
		// early in a long run may have aged out, while a fresh
		// submission is answered from the result cache.
		rv, err := submitAndFetch(addr, spec, poll, timeout)
		if err != nil {
			log.Printf("verify: %s p=%d seed=%d: %v", spec.Corpus, spec.P, spec.Seed, err)
			rep.VerifyFailures++
			continue
		}
		in, err := corpus.Find(instances, spec.Corpus)
		if err != nil {
			log.Printf("verify: %v", err)
			rep.VerifyFailures++
			continue
		}
		want, err := offline(in.A, spec)
		if err != nil {
			log.Printf("verify: offline run: %v", err)
			rep.VerifyFailures++
			continue
		}
		if service.MatrixHash(in.A) != rv.Hash || !slices.Equal(want, rv.Parts) {
			log.Printf("verify FAIL: %s p=%d seed=%d: served parts differ from offline library", spec.Corpus, spec.P, spec.Seed)
			rep.VerifyFailures++
			continue
		}
		rep.Verified++
	}
}

// submitAndFetch submits a spec, polls it to completion under the same
// cadence and budget as the load phase, and returns the full result.
func submitAndFetch(addr string, spec service.JobSpec, poll, timeout time.Duration) (service.ResultView, error) {
	var rv service.ResultView
	s := oneRequest(addr, 0, spec, poll, timeout)
	if !s.ok {
		return rv, fmt.Errorf("verification job did not complete")
	}
	raw, err := fetchRaw(addr + "/jobs/" + s.jobID + "/result")
	if err == nil {
		err = json.Unmarshal(raw, &rv)
	}
	return rv, err
}

// verifyEngines are the long-lived engines behind -verify: one per
// engine class the server addresses (any Workers >= 1 is bit-identical
// to the server's shared pool, so one single-worker engine stands in
// for every parallel worker count).
var (
	verifyParEngine = core.NewEngine(1)
	verifySeqEngine = core.NewEngine(0)
)

// offline runs the library locally with the engine class the server
// used.
func offline(a *sparse.Matrix, spec service.JobSpec) ([]int, error) {
	m, err := core.ParseMethod(spec.Method)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	if spec.Eps != nil {
		opts.Eps = *spec.Eps
	}
	opts.Refine = spec.Refine
	opts.Config.ExactFM = spec.ExactFM
	opts.Config.ParallelFM = spec.ParallelFM
	eng := verifySeqEngine
	if spec.Workers != 0 {
		eng = verifyParEngine
	}
	res, err := eng.Partition(context.Background(), a, spec.P, m, opts, rand.New(rand.NewSource(spec.Seed)))
	if err != nil {
		return nil, err
	}
	return res.Parts, nil
}

func fetchRaw(url string) (json.RawMessage, error) {
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func printSummary(rep *report.LoadReport) {
	hitRate := 0.0
	if n := rep.Requests - rep.Errors; n > 0 {
		hitRate = float64(rep.CacheHits) / float64(n)
	}
	fmt.Printf("requests=%d errors=%d retries=%d cache_hits=%d (%.1f%%) throughput=%.1f req/s\n",
		rep.Requests, rep.Errors, rep.Retries, rep.CacheHits, 100*hitRate, rep.ThroughputRPS)
	l := rep.Latency
	fmt.Printf("latency ms: overall p50=%.2f p90=%.2f p99=%.2f max=%.2f | hits p50=%.2f | misses p50=%.2f\n",
		l.Overall.P50MS, l.Overall.P90MS, l.Overall.P99MS, l.Overall.MaxMS, l.Hits.P50MS, l.Misses.P50MS)
	top := rep.PerSpec
	if len(top) > 5 {
		top = top[:5]
	}
	for _, e := range top {
		fmt.Printf("  %-14s p=%-3d seed=%-2d  %5d req  %4d hits  p50=%.2fms\n",
			e.Matrix, e.P, e.Seed, e.Requests, e.CacheHits, e.Latency.P50MS)
	}
	for _, t := range rep.PerTarget {
		fmt.Printf("  target %-28s %5d req  %4d err  %4d retry  %4d hits\n",
			t.Addr, t.Requests, t.Errors, t.Retries, t.CacheHits)
	}
	if rep.Verified+rep.VerifyFailures > 0 {
		fmt.Printf("verified %d unique specs against the offline library, %d failures\n",
			rep.Verified, rep.VerifyFailures)
	}
}
