#!/usr/bin/env bash
# Deprecation gate: the context-aware Engine API (mediumgrain.Engine /
# core.Engine) is the single entry point for every caller; the legacy
# free functions and their *Parallel/*Pool forks survive only as
# deprecated wrappers for external users. No non-test code in this repo
# outside the root package may call them — new call sites must go
# through an Engine. Wired into `make lint` and CI.
set -euo pipefail
cd "$(dirname "$0")/.."

# Deprecated root-package wrappers and core free functions. The \( after
# the alternation keeps identifiers like PartitionerConfig from
# matching.
pattern='(mediumgrain|core)\.(Partition|Bipartition|IterativeRefine|VCycleRefine|FullIterative|KWayRefine|KWayRefineParallel|InitialSplitParallel|PartitionPool)\('

bad=$(grep -rnE --include='*.go' "$pattern" cmd examples internal | grep -v '_test\.go' || true)
if [ -n "$bad" ]; then
  echo "deprecated legacy API called outside the root package (use the Engine):"
  echo "$bad"
  exit 1
fi
echo "check_deprecated: OK (no non-test caller of the deprecated API outside the root package)"
