#!/usr/bin/env bash
# End-to-end smoke test of mgserve's cluster mode, runnable locally
# (`make smoke-cluster`) and in CI: boot two shards and a stateless
# router, route jobs through the router and require consistent-hash
# forwarding, exercise the shard-to-shard peer-fetch path directly,
# drive a multi-target mgload burst with offline verification, check the
# router's merged /stats add up, then SIGTERM one shard under live
# router traffic and require zero client-visible errors (lossless
# drain + failover).
set -euo pipefail

S1="${MGCLUSTER_SHARD1:-127.0.0.1:8911}"
S2="${MGCLUSTER_SHARD2:-127.0.0.1:8912}"
RT="${MGCLUSTER_ROUTER:-127.0.0.1:8910}"
B1="http://$S1"; B2="http://$S2"; BR="http://$RT"
WORKDIR="$(mktemp -d)"
PIDS=() # filled as processes boot; the trap runs under set -u
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

# num <file> <field>: pull one integer JSON field with sed (the smoke
# scripts run without jq).
num() { sed -n 's/.*"'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1" | head -n1; }

echo "==> building"
go build -o "$WORKDIR/mgserve" ./cmd/mgserve
go build -o "$WORKDIR/mgload" ./cmd/mgload

echo "==> booting shards $S1 $S2 and router $RT"
# -replicate-after 1: the first repeat hit already pushes the entry to
# its other replica, so hot replication is observable in a short run.
# -linger on shard 2 keeps its listener answering trailing polls after
# the SIGTERM drain below.
SECRET="cluster-smoke-secret"
"$WORKDIR/mgserve" -addr "$S1" -node "$S1" -peers "$S1,$S2" \
  -data "$WORKDIR/data1" -replicate-after 1 -cluster-secret "$SECRET" \
  >"$WORKDIR/shard1.log" 2>&1 &
PIDS+=($!)
"$WORKDIR/mgserve" -addr "$S2" -node "$S2" -peers "$S1,$S2" \
  -data "$WORKDIR/data2" -replicate-after 1 -linger 3s -cluster-secret "$SECRET" \
  >"$WORKDIR/shard2.log" 2>&1 &
PIDS+=($!)
SHARD2_PID=$!
"$WORKDIR/mgserve" -router -addr "$RT" -shards "$S1,$S2" \
  >"$WORKDIR/router.log" 2>&1 &
PIDS+=($!)

for base in "$B1" "$B2" "$BR"; do
  for _ in $(seq 1 50); do
    if curl -sf "$base/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.2
  done
  curl -sf "$base/readyz" | grep -q '"ready": true' || { echo "$base never became ready"; exit 1; }
done

echo "==> routed job through the router"
SPEC='{"corpus":"lap2d-24","p":4,"method":"MG","seed":42,"workers":2}'
SUBMIT=$(curl -sf -X POST "$BR/jobs" -d "$SPEC")
echo "$SUBMIT"
JOB_ID=$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
test -n "$JOB_ID"
# Router job ids are namespaced by owning shard: s<8-hex shard hash>-<id>.
echo "$JOB_ID" | grep -Eq '^s[0-9a-f]{8}-' || { echo "unprefixed router id: $JOB_ID"; exit 1; }
for _ in $(seq 1 150); do
  STATE=$(curl -sf "$BR/jobs/$JOB_ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' || true)
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "routed job failed"; exit 1; }
  sleep 0.2
done
test "$STATE" = "done"
curl -sf "$BR/jobs/$JOB_ID/result" -o "$WORKDIR/result.json"
grep -q '"parts"' "$WORKDIR/result.json"

echo "==> resubmit through the router: same shard, cache hit"
RESUBMIT=$(curl -sf -X POST "$BR/jobs" -d "$SPEC")
# Proxied job responses are re-encoded compact (no space after colons).
echo "$RESUBMIT" | grep -Eq '"cached": ?true' || { echo "no cache hit via router"; exit 1; }
curl -sf "$BR/stats" -o "$WORKDIR/rstats.json"
FWD=$(num "$WORKDIR/rstats.json" forwarded)
test "${FWD:-0}" -ge 2 || { echo "router forwarded $FWD jobs, want >= 2"; exit 1; }
# Fetch to a file: `curl | grep -q` would kill the pipe at the first
# match under pipefail (curl exit 23).
curl -sf "$BR/stats/ring" -o "$WORKDIR/ring.json"
grep -q '"nodes": 2' "$WORKDIR/ring.json" || { echo "ring view wrong"; exit 1; }

echo "==> peer fetch: shard 2 adopts shard 1's entry instead of recomputing"
PSPEC='{"corpus":"tridiag","p":2,"method":"MG","seed":7,"workers":1}'
P1=$(curl -sf -X POST "$B1/jobs" -d "$PSPEC")
P1_ID=$(echo "$P1" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
for _ in $(seq 1 150); do
  STATE=$(curl -sf "$B1/jobs/$P1_ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' || true)
  [ "$STATE" = "done" ] && break
  sleep 0.2
done
test "$STATE" = "done"
P2=$(curl -sf -X POST "$B2/jobs" -d "$PSPEC")
P2_ID=$(echo "$P2" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
for _ in $(seq 1 150); do
  STATE=$(curl -sf "$B2/jobs/$P2_ID" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' || true)
  [ "$STATE" = "done" ] && break
  sleep 0.2
done
test "$STATE" = "done"
curl -sf "$B2/jobs/$P2_ID/result" -o "$WORKDIR/peer.json"
# The result endpoint streams compact JSON (no space after the colon).
grep -Eq '"origin": ?"peer:'"$S1"'"' "$WORKDIR/peer.json" \
  || { echo "shard 2 recomputed instead of peer-fetching"; cat "$WORKDIR/peer.json"; exit 1; }
curl -sf "$B2/stats" -o "$WORKDIR/s2stats.json"
OKS=$(num "$WORKDIR/s2stats.json" peer_fetch_ok)
test "${OKS:-0}" -ge 1 || { echo "peer_fetch_ok = $OKS on shard 2, want >= 1"; exit 1; }

echo "==> peer endpoints refuse unauthenticated and malformed requests"
PKEY=$(sed -n 's/.*"key": *"\([^"]*\)".*/\1/p' "$WORKDIR/peer.json" | head -n1)
test -n "$PKEY"
# No secret header: 401 even for a real key.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$B1/cache/$PKEY")
test "$CODE" = "401" || { echo "unauthenticated /cache GET answered $CODE, want 401"; exit 1; }
# With the secret: served.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "X-Mediumgrain-Secret: $SECRET" "$B1/cache/$PKEY")
test "$CODE" = "200" || { echo "authenticated /cache GET answered $CODE, want 200"; exit 1; }
# Path-traversal-shaped key: 400 before any filesystem access.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "X-Mediumgrain-Secret: $SECRET" "$B1/cache/..%2F..%2Fescape")
test "$CODE" = "400" || { echo "traversal key answered $CODE, want 400"; exit 1; }

echo "==> multi-target mgload with offline verification"
"$WORKDIR/mgload" -targets "$B1,$B2" -clients 8 -requests 3 -seeds 1 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -verify -out "$WORKDIR/load.json"
grep -q '"verify_failures": 0' "$WORKDIR/load.json"
grep -q '"per_target"' "$WORKDIR/load.json" || { echo "load report lost per-target rows"; exit 1; }
grep -q "\"addr\": \"$B2\"" "$WORKDIR/load.json" || { echo "no per-target row for shard 2"; exit 1; }

echo "==> merged router stats add up"
curl -sf "$BR/stats" -o "$WORKDIR/merged.json"
curl -sf "$B1/stats" -o "$WORKDIR/s1.json"
curl -sf "$B2/stats" -o "$WORKDIR/s2.json"
TOT=$(num "$WORKDIR/merged.json" accepted)
A1=$(num "$WORKDIR/s1.json" accepted)
A2=$(num "$WORKDIR/s2.json" accepted)
# The shard stats were read after the merged snapshot, so they can only
# have grown past it — never shrunk below it.
test "$TOT" -ge 2 || { echo "merged accepted = $TOT, want >= 2"; exit 1; }
test $((A1 + A2)) -ge "$TOT" || { echo "merged accepted $TOT > shard sum $((A1 + A2))"; exit 1; }
grep -q '"shards_reachable": 2' "$WORKDIR/merged.json" || { echo "router lost a shard"; exit 1; }

echo "==> lossless drain: SIGTERM shard 2 under live router traffic"
# -max-error-rate 0: mgload itself fails the run if any request
# ultimately errors, replacing a fragile grep over the report JSON.
"$WORKDIR/mgload" -addr "$BR" -clients 4 -duration 4s -seeds 2 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -max-error-rate 0 -out "$WORKDIR/drain.json" &
LOAD_PID=$!
sleep 1.5
kill -TERM "$SHARD2_PID"
wait "$LOAD_PID" || { echo "failover lost requests"; grep '"errors"' "$WORKDIR/drain.json" || true; exit 1; }
grep -q "drained:" "$WORKDIR/shard2.log"
# The router must have noticed and kept serving.
curl -sf "$BR/healthz" >/dev/null || { echo "router died during failover"; exit 1; }

echo "==> cluster smoke OK"
