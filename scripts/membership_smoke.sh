#!/usr/bin/env bash
# End-to-end smoke test of live cluster membership, runnable locally
# (`make smoke-membership`) and in CI: boot a three-shard cluster and a
# polling router, warm the cache through the router, then — under live
# mgload traffic — join a fourth shard with -join (it must announce
# itself, move the ring epoch, and bulk-rehydrate the keys that
# remapped to it) and SIGTERM it again with -leave-on-term (planned
# leave: announce, drain, hand every owned entry off). The client load
# must finish with zero errors across both transitions, and the
# rehydration/handoff counters must be nonzero.
set -euo pipefail

S1="${MGMEMBER_SHARD1:-127.0.0.1:8921}"
S2="${MGMEMBER_SHARD2:-127.0.0.1:8922}"
S3="${MGMEMBER_SHARD3:-127.0.0.1:8923}"
S4="${MGMEMBER_SHARD4:-127.0.0.1:8924}"
RT="${MGMEMBER_ROUTER:-127.0.0.1:8920}"
B4="http://$S4"; BR="http://$RT"
WORKDIR="$(mktemp -d)"
PIDS=() # filled as processes boot; the trap runs under set -u
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

# num <file> <field>: pull one integer JSON field with sed (the smoke
# scripts run without jq).
num() { sed -n 's/.*"'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1" | head -n1; }

echo "==> building"
go build -o "$WORKDIR/mgserve" ./cmd/mgserve
go build -o "$WORKDIR/mgload" ./cmd/mgload

echo "==> booting shards $S1 $S2 $S3 and router $RT"
SECRET="membership-smoke-secret"
for i in 1 2 3; do
  eval "ADDR=\$S$i"
  "$WORKDIR/mgserve" -addr "$ADDR" -node "$ADDR" -peers "$S1,$S2,$S3" \
    -data "$WORKDIR/data$i" -cluster-secret "$SECRET" -linger 3s \
    >"$WORKDIR/shard$i.log" 2>&1 &
  PIDS+=($!)
done
# -membership-poll 500ms: the router follows joins/leaves fast enough
# for a short smoke run even without hitting a 409 first.
"$WORKDIR/mgserve" -router -addr "$RT" -shards "$S1,$S2,$S3" \
  -cluster-secret "$SECRET" -membership-poll 500ms \
  >"$WORKDIR/router.log" 2>&1 &
PIDS+=($!)

for base in "http://$S1" "http://$S2" "http://$S3" "$BR"; do
  for _ in $(seq 1 50); do
    if curl -sf "$base/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.2
  done
  curl -sf "$base/readyz" | grep -q '"ready": true' || { echo "$base never became ready"; exit 1; }
done

echo "==> warming the cluster cache through the router"
# -zipf 0: uniform spec coverage, so every one of the 24 distinct keys
# gets cached somewhere — the joiner's rehydration set (~1/4 of them)
# must not be empty by sampling accident.
# -max-error-rate 0: mgload itself fails the run if any request errors,
# replacing a fragile grep over the report JSON.
"$WORKDIR/mgload" -addr "$BR" -clients 8 -requests 6 -seeds 6 -zipf 0 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -max-error-rate 0 -out "$WORKDIR/warm.json"

echo "==> live load + join shard 4 ($S4)"
"$WORKDIR/mgload" -addr "$BR" -clients 4 -duration 10s -seeds 6 -zipf 0 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -max-error-rate 0 -out "$WORKDIR/load.json" &
LOAD_PID=$!
PIDS+=($LOAD_PID)
sleep 1
"$WORKDIR/mgserve" -addr "$S4" -node "$S4" -join "$S1" \
  -data "$WORKDIR/data4" -cluster-secret "$SECRET" \
  -leave-on-term -linger 2s -rehydrate-pause 5ms \
  >"$WORKDIR/shard4.log" 2>&1 &
PIDS+=($!)
SHARD4_PID=$!

# The joiner must become ready, and its bulk rehydration must land real
# entries (with 24 warm keys it owns ~6 under the 4-node ring).
for _ in $(seq 1 100); do
  # || true: the joiner is still booting on the first polls (set -e).
  DONE=$(curl -sf "$B4/stats" 2>/dev/null | sed -n 's/.*"rehydrate_done": \([0-9][0-9]*\).*/\1/p' | head -n1 || true)
  [ "${DONE:-0}" -ge 1 ] && break
  sleep 0.2
done
test "${DONE:-0}" -ge 1 || { echo "joiner never rehydrated an entry"; tail -20 "$WORKDIR/shard4.log"; exit 1; }
grep -q "join: announced" "$WORKDIR/shard4.log" || { echo "joiner never announced"; exit 1; }

# The router's poll loop must adopt the 4-member epoch.
for _ in $(seq 1 50); do
  curl -sf "$BR/stats" -o "$WORKDIR/rstats.json" 2>/dev/null || true
  if grep -q '"members": 4' "$WORKDIR/rstats.json" 2>/dev/null; then break; fi
  sleep 0.2
done
grep -q '"members": 4' "$WORKDIR/rstats.json" || { echo "router never adopted the join"; exit 1; }

# The shard-side ring view agrees: 4 members at a moved epoch.
curl -sf "$B4/stats/ring" -o "$WORKDIR/ring4.json"
grep -q '"nodes": 4' "$WORKDIR/ring4.json" || { echo "joiner ring view wrong"; exit 1; }

echo "==> planned leave: SIGTERM shard 4 under the same live load"
REHYDRATED=$DONE
kill -TERM "$SHARD4_PID"
wait "$LOAD_PID" || { echo "membership churn lost requests"; grep '"errors"' "$WORKDIR/load.json" || true; exit 1; }

# Wait for shard 4 to finish its leave (announce, drain, handoff, exit).
for _ in $(seq 1 100); do
  if grep -q "handoff:" "$WORKDIR/shard4.log"; then break; fi
  sleep 0.2
done
grep -q "leave: announced" "$WORKDIR/shard4.log" || { echo "no leave announcement"; tail -20 "$WORKDIR/shard4.log"; exit 1; }
HANDOFF=$(sed -n 's/.*handoff: pushed \([0-9][0-9]*\) entries.*/\1/p' "$WORKDIR/shard4.log" | head -n1)
test "${HANDOFF:-0}" -ge 1 || { echo "handoff pushed ${HANDOFF:-0} entries, want >= 1"; tail -20 "$WORKDIR/shard4.log"; exit 1; }

# The router converges back to 3 members.
for _ in $(seq 1 50); do
  curl -sf "$BR/stats" -o "$WORKDIR/rstats2.json" 2>/dev/null || true
  if grep -q '"members": 3' "$WORKDIR/rstats2.json" 2>/dev/null; then break; fi
  sleep 0.2
done
grep -q '"members": 3' "$WORKDIR/rstats2.json" || { echo "router never adopted the leave"; exit 1; }

# The surviving shards adopted both epochs (join then leave).
grep -q "membership: adopted" "$WORKDIR/shard1.log" || { echo "shard 1 never adopted a membership change"; exit 1; }
curl -sf "$BR/healthz" >/dev/null || { echo "router died during membership churn"; exit 1; }

echo "==> membership smoke OK (rehydrated $REHYDRATED entries in, handed $HANDOFF off)"
