#!/usr/bin/env bash
# Chaos smoke test of the cluster's resilience layer, runnable locally
# (`make smoke-chaos`) and in CI: boot three single-replica shards under
# deterministic fault injection (one shard sheds 503s on its job
# endpoints, another injects latency) plus a router with a tight circuit
# breaker, drive closed-loop mgload through the router with client-side
# retries, SIGKILL one shard mid-run and restart it a few seconds later.
# The run passes only if the client finishes with zero surviving errors
# (mgload -max-error-rate 0), the router's breaker visibly opened and
# closed again around the crash, and degraded-mode serving (routing a
# dead owner's keys to a live non-owner) actually happened.
set -euo pipefail

S1="${MGCHAOS_SHARD1:-127.0.0.1:8931}"
S2="${MGCHAOS_SHARD2:-127.0.0.1:8932}"
S3="${MGCHAOS_SHARD3:-127.0.0.1:8933}"
RT="${MGCHAOS_ROUTER:-127.0.0.1:8930}"
BR="http://$RT"
WORKDIR="$(mktemp -d)"
PIDS=() # filled as processes boot; the trap runs under set -u
trap 'kill "${PIDS[@]}" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

# num <file> <field>: pull one integer JSON field with sed (the smoke
# scripts run without jq).
num() { sed -n 's/.*"'"$2"'": \([0-9][0-9]*\).*/\1/p' "$1" | head -n1; }

echo "==> building"
go build -o "$WORKDIR/mgserve" ./cmd/mgserve
go build -o "$WORKDIR/mgload" ./cmd/mgload

# -replicas 1: every key has exactly one owner, so killing shard 3
# leaves its key range with no live replica — the only way to serve it
# is the router's degraded fallback to a non-owner shard.
SECRET="chaos-smoke-secret"
COMMON=(-peers "$S1,$S2,$S3" -replicas 1 -cluster-secret "$SECRET"
  -breaker-threshold 2 -breaker-base 200ms -breaker-max 1s)

echo "==> booting faulty shards $S1 $S2 $S3 and router $RT"
# Shard 1 sheds 15% of its job-endpoint requests with 503 (schedule via
# $MGSERVE_FAULTS, the env form); shard 2 delays 20% of its job polls by
# 250ms (schedule via -fault-spec, the flag form). Shard 3 runs clean —
# its failure mode is the SIGKILL below.
MGSERVE_FAULTS="shard1:err503:rate=0.15:path=/jobs" \
  "$WORKDIR/mgserve" -addr "$S1" -node "$S1" "${COMMON[@]}" \
  -data "$WORKDIR/data1" -fault-label shard1 -fault-seed 11 \
  >"$WORKDIR/shard1.log" 2>&1 &
PIDS+=($!)
"$WORKDIR/mgserve" -addr "$S2" -node "$S2" "${COMMON[@]}" \
  -data "$WORKDIR/data2" \
  -fault-spec "shard2:delay=250ms:rate=0.2:path=/jobs" -fault-label shard2 -fault-seed 12 \
  >"$WORKDIR/shard2.log" 2>&1 &
PIDS+=($!)
"$WORKDIR/mgserve" -addr "$S3" -node "$S3" "${COMMON[@]}" \
  -data "$WORKDIR/data3" \
  >"$WORKDIR/shard3.log" 2>&1 &
PIDS+=($!)
SHARD3_PID=$!
"$WORKDIR/mgserve" -router -addr "$RT" -shards "$S1,$S2,$S3" -replicas 1 \
  -cluster-secret "$SECRET" -breaker-threshold 2 -breaker-base 200ms -breaker-max 1s \
  -hedge-delay 150ms \
  >"$WORKDIR/router.log" 2>&1 &
PIDS+=($!)

for base in "http://$S1" "http://$S2" "http://$S3" "$BR"; do
  for _ in $(seq 1 50); do
    if curl -sf "$base/readyz" >/dev/null 2>&1; then break; fi
    sleep 0.2
  done
  curl -sf "$base/readyz" | grep -q '"ready": true' || { echo "$base never became ready"; exit 1; }
done
grep -q "fault injection ON" "$WORKDIR/shard1.log" || { echo "shard 1 did not arm its fault schedule"; exit 1; }
grep -q "fault injection ON" "$WORKDIR/shard2.log" || { echo "shard 2 did not arm its fault schedule"; exit 1; }

echo "==> mgload through the router; SIGKILL shard 3 mid-run, restart it"
# -zipf 0 with 16 distinct specs: uniform coverage, so shard 3's key
# range keeps getting traffic while it is dead (forcing the breaker
# open and the degraded fallback) and again after it returns (closing
# the breaker). -retries 3 + -max-error-rate 0: transient faults may
# cost retries but no request may ultimately fail.
"$WORKDIR/mgload" -addr "$BR" -clients 8 -duration 10s -seeds 2 -zipf 0 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -retries 3 -max-error-rate 0 \
  -out "$WORKDIR/chaos.json" >"$WORKDIR/mgload.log" 2>&1 &
LOAD_PID=$!
PIDS+=($LOAD_PID)

sleep 2.5
echo "==> kill -9 shard 3 ($SHARD3_PID)"
{ kill -9 "$SHARD3_PID" && wait "$SHARD3_PID"; } 2>/dev/null || true

sleep 2.5
echo "==> restarting shard 3 on its old data dir"
"$WORKDIR/mgserve" -addr "$S3" -node "$S3" "${COMMON[@]}" \
  -data "$WORKDIR/data3" \
  >"$WORKDIR/shard3-restart.log" 2>&1 &
PIDS+=($!)
for _ in $(seq 1 50); do
  if curl -sf "http://$S3/readyz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "http://$S3/readyz" | grep -q '"ready": true' || { echo "shard 3 never came back"; exit 1; }

wait "$LOAD_PID" || { echo "mgload saw surviving client errors under chaos:"; tail -5 "$WORKDIR/mgload.log"; exit 1; }
tail -n +1 "$WORKDIR/mgload.log" | grep '^requests=' || true

echo "==> breaker opened and re-closed; degraded serving happened"
curl -sf "$BR/stats" -o "$WORKDIR/rstats.json"
OPENED=$(num "$WORKDIR/rstats.json" breaker_opened)
CLOSED=$(num "$WORKDIR/rstats.json" breaker_closed)
DEGRADED=$(num "$WORKDIR/rstats.json" degraded_served)
RETRIES=$(num "$WORKDIR/chaos.json" retries)
test "${OPENED:-0}" -ge 1 || { echo "breaker_opened = ${OPENED:-0}, want >= 1"; exit 1; }
test "${CLOSED:-0}" -ge 1 || { echo "breaker_closed = ${CLOSED:-0}, want >= 1 (no recovery)"; exit 1; }
test "${DEGRADED:-0}" -ge 1 || { echo "degraded_served = ${DEGRADED:-0}, want >= 1"; exit 1; }

# The shards that computed the dead owner's keys counted them, and the
# cluster ended the run reachable again.
DEGJOBS=$(num "$WORKDIR/rstats.json" degraded_jobs)
test "${DEGJOBS:-0}" -ge 1 || { echo "degraded_jobs = ${DEGJOBS:-0}, want >= 1"; exit 1; }
grep -q '"shards_reachable": 3' "$WORKDIR/rstats.json" || { echo "cluster did not fully recover"; exit 1; }
curl -sf "$BR/healthz" >/dev/null || { echo "router died during chaos"; exit 1; }

echo "==> chaos smoke OK (breaker opened $OPENED / closed $CLOSED, degraded_served=$DEGRADED, degraded_jobs=$DEGJOBS, client retries=${RETRIES:-0})"
