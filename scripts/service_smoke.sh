#!/usr/bin/env bash
# End-to-end smoke test of the mgserve daemon, runnable locally
# (`make smoke-service`) and in CI: boot the server, submit a job with
# curl, poll it to completion, resubmit and require a cache hit, check
# /stats counted it, then drive a short mgload burst with offline
# verification and exercise graceful shutdown.
set -euo pipefail

ADDR="${MGSERVE_ADDR:-127.0.0.1:8907}"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVER_PID="" # set once the server boots; the trap runs under set -u
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

echo "==> building"
go build -o "$WORKDIR/mgserve" ./cmd/mgserve
go build -o "$WORKDIR/mgload" ./cmd/mgload

echo "==> booting mgserve on $ADDR"
# One runner: the cancel step below parks it with a heavy job so the
# victim job is deterministically still queued (or at worst freshly
# running) when the DELETE arrives.
"$WORKDIR/mgserve" -addr "$ADDR" -data "$WORKDIR/data" -runners 1 \
  >"$WORKDIR/mgserve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 50); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"status": "ok"'

echo "==> submitting a job"
SPEC='{"corpus":"lap2d-24","p":4,"method":"MG","seed":42,"workers":2}'
SUBMIT=$(curl -sf -X POST "$BASE/jobs" -d "$SPEC")
echo "$SUBMIT"
JOB_ID=$(echo "$SUBMIT" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
test -n "$JOB_ID"

echo "==> polling $JOB_ID"
for _ in $(seq 1 150); do
  # `|| true`: a transient curl failure must retry, not abort via set -e.
  STATE=$(curl -sf "$BASE/jobs/$JOB_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' || true)
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "job failed"; exit 1; }
  sleep 0.2
done
test "$STATE" = "done"
# Fetch to a file: the result JSON carries the whole parts vector, and
# `curl | grep -q` would kill the pipe at the first match (curl exit 23).
curl -sf "$BASE/jobs/$JOB_ID/result" -o "$WORKDIR/result.json"
grep -q '"volume"' "$WORKDIR/result.json"
grep -q '"parts"' "$WORKDIR/result.json"

echo "==> resubmitting: must be a cache hit"
RESUBMIT=$(curl -sf -X POST "$BASE/jobs" -d "$SPEC")
echo "$RESUBMIT" | grep -q '"cached": true' || { echo "no cache hit"; exit 1; }
curl -sf "$BASE/stats" -o "$WORKDIR/stats.json"
grep -q '"hits": [1-9]' "$WORKDIR/stats.json" || { echo "stats missed the hit"; exit 1; }

echo "==> race-to-best search job (tries > 1)"
SEARCH_SPEC='{"corpus":"lap2d-24","p":4,"method":"MG","seed":42,"workers":2,"tries":4}'
SEARCH=$(curl -sf -X POST "$BASE/jobs" -d "$SEARCH_SPEC")
echo "$SEARCH" | grep -q '"cached": true' && { echo "search spec must not hit the single-run cache"; exit 1; }
SEARCH_ID=$(echo "$SEARCH" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
test -n "$SEARCH_ID"
for _ in $(seq 1 150); do
  STATE=$(curl -sf "$BASE/jobs/$SEARCH_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' || true)
  [ "$STATE" = "done" ] && break
  [ "$STATE" = "failed" ] && { echo "search job failed"; exit 1; }
  sleep 0.2
done
test "$STATE" = "done"
curl -sf "$BASE/jobs/$SEARCH_ID/result" -o "$WORKDIR/search.json"
# The result endpoint streams compact JSON (no space after the colon).
grep -Eq '"tries": ?4' "$WORKDIR/search.json" || { echo "result view lost the search spec"; exit 1; }
grep -Eq '"winner_try": ?[1-9]' "$WORKDIR/search.json" || { echo "result view lost the winner"; exit 1; }
curl -sf "$BASE/stats" -o "$WORKDIR/stats2.json"
grep -q '"search_jobs": [1-9]' "$WORKDIR/stats2.json" || { echo "stats missed the search job"; exit 1; }
grep -q '"search_tries": [1-9]' "$WORKDIR/stats2.json" || { echo "stats missed the search tries"; exit 1; }

echo "==> DELETE /jobs/{id} cancels a job"
# Park the single spare runner budget with a heavy job, then cancel a
# second heavy job: whether it is still queued or already running, the
# DELETE must land it in state "canceled" and /stats must count it.
HEAVY='{"corpus":"lap2d-24","p":64,"method":"MG","seed":910,"refine":true,"workers":1}'
curl -sf -X POST "$BASE/jobs" -d "$HEAVY" >/dev/null
VICTIM=$(curl -sf -X POST "$BASE/jobs" -d '{"corpus":"lap2d-24","p":64,"method":"MG","seed":911,"refine":true,"workers":1}')
VICTIM_ID=$(echo "$VICTIM" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
test -n "$VICTIM_ID"
CANCELED=$(curl -sf -X DELETE "$BASE/jobs/$VICTIM_ID")
echo "$CANCELED" | grep -q '"state": "canceled"' || { echo "DELETE did not cancel: $CANCELED"; exit 1; }
curl -sf "$BASE/jobs/$VICTIM_ID" | grep -q '"state": "canceled"' || { echo "canceled state not persisted"; exit 1; }
# The canceled job's result is gone (410), and /stats counted the cancel.
RESULT_CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/jobs/$VICTIM_ID/result")
test "$RESULT_CODE" = "410" || { echo "canceled result answered $RESULT_CODE, want 410"; exit 1; }
curl -sf "$BASE/stats" | grep -q '"canceled": [1-9]' || { echo "stats missed the cancel"; exit 1; }

echo "==> mgload burst with offline verification"
"$WORKDIR/mgload" -addr "$BASE" -clients 8 -requests 3 -seeds 1 \
  -matrices "lap2d-24,tridiag" -ps "2,4" -verify -out "$WORKDIR/load.json"
grep -q '"verify_failures": 0' "$WORKDIR/load.json"

echo "==> graceful shutdown (SIGTERM drain)"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 50); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SERVER_PID" 2>/dev/null; then echo "server did not drain"; exit 1; fi
grep -q "drained:" "$WORKDIR/mgserve.log"
ls "$WORKDIR/data" | grep -q '.meta.json'

echo "==> service smoke OK"
