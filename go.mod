module mediumgrain

go 1.24
