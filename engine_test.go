package mediumgrain_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"mediumgrain"
	"mediumgrain/internal/gen"
)

// TestEngineBitIdenticalToLegacy is the equivalence gate of the API
// redesign: for every method, at the sequential configuration and both
// pool sizes {1, max}, Engine.Partition with a seeded Request must
// reproduce the deprecated free function with NewRNG(seed) bit for bit.
func TestEngineBitIdenticalToLegacy(t *testing.T) {
	a := gen.Laplacian2D(14, 14)
	methods := []mediumgrain.Method{
		mediumgrain.MethodRowNet, mediumgrain.MethodColNet,
		mediumgrain.MethodLocalBest, mediumgrain.MethodFineGrain,
		mediumgrain.MethodMediumGrain,
	}
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 2 {
		maxW = 2
	}
	for _, workers := range []int{0, 1, maxW} {
		eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: workers})
		for _, m := range methods {
			for _, p := range []int{2, 8} {
				for seed := int64(1); seed <= 3; seed++ {
					opts := mediumgrain.DefaultOptions()
					opts.Workers = workers
					opts.Refine = seed == 2 // cover the +IR path too
					want, err := mediumgrain.Partition(a, p, m, opts, mediumgrain.NewRNG(seed))
					if err != nil {
						t.Fatalf("legacy workers=%d %v p=%d: %v", workers, m, p, err)
					}
					got, err := eng.Partition(context.Background(), mediumgrain.Request{
						Matrix: a,
						P:      p,
						Method: m,
						Seed:   seed,
						Refine: opts.Refine,
					})
					if err != nil {
						t.Fatalf("engine workers=%d %v p=%d: %v", workers, m, p, err)
					}
					if got.Volume != want.Volume {
						t.Fatalf("workers=%d %v p=%d seed=%d: engine volume %d != legacy %d",
							workers, m, p, seed, got.Volume, want.Volume)
					}
					for k := range want.Parts {
						if got.Parts[k] != want.Parts[k] {
							t.Fatalf("workers=%d %v p=%d seed=%d: parts diverge at nonzero %d",
								workers, m, p, seed, k)
						}
					}
				}
			}
		}
	}
}

// TestEngineReuseIsStateless: back-to-back and repeated calls on one
// engine must not influence each other through the reused scratches.
func TestEngineReuseIsStateless(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})
	req := mediumgrain.Request{Matrix: a, P: 4, Method: mediumgrain.MethodMediumGrain, Seed: 9}
	first, err := eng.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other work that dirties the scratch pool.
	if _, err := eng.Partition(context.Background(), mediumgrain.Request{
		Matrix: gen.Laplacian2D(11, 23), P: 8, Method: mediumgrain.MethodFineGrain, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	second, err := eng.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Volume != second.Volume {
		t.Fatalf("repeat call changed volume: %d != %d", first.Volume, second.Volume)
	}
	for k := range first.Parts {
		if first.Parts[k] != second.Parts[k] {
			t.Fatalf("repeat call changed parts at %d", k)
		}
	}
}

// TestEngineRefineAndEvaluate: Refine never worsens the volume and
// Evaluate agrees with the free metric functions.
func TestEngineRefineAndEvaluate(t *testing.T) {
	a := gen.Laplacian2D(12, 12)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})
	ctx := context.Background()

	res, err := eng.Partition(ctx, mediumgrain.Request{
		Matrix: a, P: 4, Method: mediumgrain.MethodRowNet, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := eng.Refine(ctx, mediumgrain.Request{Matrix: a, P: 4, Seed: 6, Parts: res.Parts})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Volume > res.Volume {
		t.Fatalf("refine worsened volume: %d -> %d", res.Volume, refined.Volume)
	}
	ev, err := eng.Evaluate(ctx, mediumgrain.Request{Matrix: a, P: 4, Parts: refined.Parts})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Volume != mediumgrain.Volume(a, refined.Parts, 4) {
		t.Fatalf("evaluate volume %d != metric %d", ev.Volume, mediumgrain.Volume(a, refined.Parts, 4))
	}
	if ev.Imbalance != mediumgrain.Imbalance(refined.Parts, 4) {
		t.Fatal("evaluate imbalance disagrees with the metric function")
	}
	// Bipartition refine path (p = 2 runs Algorithm 2).
	bi, err := eng.Bipartition(ctx, mediumgrain.Request{Matrix: a, Method: mediumgrain.MethodColNet, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ir, err := eng.Refine(ctx, mediumgrain.Request{Matrix: a, Seed: 8, Parts: bi.Parts})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Volume > bi.Volume {
		t.Fatalf("iterative refine worsened volume: %d -> %d", bi.Volume, ir.Volume)
	}
}

// TestEngineProgressEvents: the optional Progress callback sees every
// nonzero exactly once across partition events plus a final done event.
func TestEngineProgressEvents(t *testing.T) {
	a := gen.Laplacian2D(16, 16)
	eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: 2})
	var leafNNZ atomic.Int64
	var doneSeen atomic.Bool
	_, err := eng.Partition(context.Background(), mediumgrain.Request{
		Matrix: a, P: 8, Method: mediumgrain.MethodMediumGrain, Seed: 3,
		Progress: func(ev mediumgrain.Event) {
			switch ev.Stage {
			case "partition":
				// CompletedNNZ is a running total; keep the max seen
				// (events from different workers may arrive out of
				// order).
				for {
					cur := leafNNZ.Load()
					if int64(ev.CompletedNNZ) <= cur || leafNNZ.CompareAndSwap(cur, int64(ev.CompletedNNZ)) {
						break
					}
				}
			case "done":
				doneSeen.Store(true)
			}
			if ev.TotalNNZ != a.NNZ() {
				t.Errorf("event total %d != nnz %d", ev.TotalNNZ, a.NNZ())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := leafNNZ.Load(); got != int64(a.NNZ()) {
		t.Fatalf("partition events covered %d of %d nonzeros", got, a.NNZ())
	}
	if !doneSeen.Load() {
		t.Fatal("no done event")
	}
}

// TestEngineRequestValidation: nil matrices and mismatched parts are
// rejected, not partially executed.
func TestEngineRequestValidation(t *testing.T) {
	eng := mediumgrain.New(mediumgrain.EngineConfig{})
	ctx := context.Background()
	if _, err := eng.Partition(ctx, mediumgrain.Request{}); err == nil {
		t.Fatal("nil matrix accepted")
	}
	a := gen.Laplacian2D(6, 6)
	if _, err := eng.Refine(ctx, mediumgrain.Request{Matrix: a, Parts: []int{0, 1}}); err == nil {
		t.Fatal("short parts accepted by Refine")
	}
	if _, err := eng.Evaluate(ctx, mediumgrain.Request{Matrix: a, Parts: []int{0}}); err == nil {
		t.Fatal("short parts accepted by Evaluate")
	}
}

// TestEngineCancellationReturnsError: a pre-canceled context must stop
// the engine before any work and surface context.Canceled.
func TestEngineCancellationReturnsError(t *testing.T) {
	a := gen.Laplacian2D(20, 20)
	for _, workers := range []int{0, 2} {
		eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: workers})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := eng.Partition(ctx, mediumgrain.Request{
			Matrix: a, P: 8, Method: mediumgrain.MethodMediumGrain, Seed: 1,
		}); err != context.Canceled {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if _, err := eng.Refine(ctx, mediumgrain.Request{
			Matrix: a, P: 4, Seed: 1, Parts: make([]int, a.NNZ()),
		}); err != context.Canceled {
			t.Fatalf("workers=%d refine: want context.Canceled, got %v", workers, err)
		}
	}
}

// TestEngineParallelFMDeterministic drives the ParallelFM knob through
// the public surface: for a fixed seed, engines at Workers ∈ {1, 2, max}
// must produce identical parts vectors — the satellite guarantee of the
// parallel refinement layers — with the flag both on and off.
func TestEngineParallelFMDeterministic(t *testing.T) {
	a := gen.Laplacian2D(40, 40)
	maxW := runtime.GOMAXPROCS(0)
	if maxW < 4 {
		maxW = 4
	}
	for _, parallelFM := range []bool{false, true} {
		pcfg := mediumgrain.MondriaanLikeConfig()
		pcfg.ParallelFM = parallelFM
		var ref *mediumgrain.Result
		for _, workers := range []int{1, 2, maxW} {
			eng := mediumgrain.New(mediumgrain.EngineConfig{Workers: workers, Partitioner: pcfg})
			res, err := eng.Partition(context.Background(), mediumgrain.Request{
				Matrix: a, P: 8, Method: mediumgrain.MethodMediumGrain, Seed: 7,
			})
			if err != nil {
				t.Fatalf("parallelFM=%v workers=%d: %v", parallelFM, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Volume != ref.Volume {
				t.Fatalf("parallelFM=%v workers=%d: volume %d != %d", parallelFM, workers, res.Volume, ref.Volume)
			}
			for i := range res.Parts {
				if res.Parts[i] != ref.Parts[i] {
					t.Fatalf("parallelFM=%v workers=%d: parts diverge at %d", parallelFM, workers, i)
				}
			}
		}
	}
}
